"""Deterministic discrete-event loop.

A tiny priority-queue scheduler over a
:class:`~repro.obs.clock.VirtualClock`: callbacks are ordered by their
simulated fire time, ties broken by insertion order, and popping an event
advances the clock to its timestamp before running it.  Because nothing here
reads the wall clock or iterates an unordered container, a seeded simulation
replays bit-for-bit — the property every ``repro simulate`` report and the
checkpoint/resume tests lean on.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..obs.clock import VirtualClock

__all__ = ["Event", "EventLoop"]


class Event:
    """A scheduled callback; ``cancel()`` makes the pop a silent no-op."""

    __slots__ = ("when", "seq", "callback", "cancelled")

    def __init__(self, when: float, seq: int, callback: Callable[[], None]) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class EventLoop:
    """Priority-queue event loop over simulated time.

    Parameters
    ----------
    clock:
        The :class:`VirtualClock` to drive (a fresh one when omitted).
        Sharing it with the obs context timestamps spans in simulated time.
    """

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock or VirtualClock()
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self.processed = 0

    def __len__(self) -> int:
        return sum(1 for _, _, e in self._heap if not e.cancelled)

    @property
    def now(self) -> float:
        return self.clock.time

    # -- scheduling --------------------------------------------------------
    def schedule_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` when simulated time reaches ``when``."""
        when = float(when)
        if when < self.clock.time:
            raise ValueError(
                f"cannot schedule at {when}: simulated time is already "
                f"{self.clock.time}"
            )
        event = Event(when, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, (event.when, event.seq, event))
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("delay cannot be negative")
        return self.schedule_at(self.clock.time + float(delay), callback)

    # -- execution ---------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Fire time of the earliest pending event (None when idle)."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Pop the earliest event, advance the clock to it, run it.

        Returns False when no runnable event remained.
        """
        while self._heap:
            _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.when)
            self.processed += 1
            event.callback()
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Drain the queue (optionally bounded by time or event count).

        Events scheduled strictly after ``until`` stay queued.  Returns the
        number of events processed by this call.
        """
        ran = 0
        while self._heap:
            if max_events is not None and ran >= max_events:
                break
            upcoming = self.peek_time()
            if upcoming is None or (until is not None and upcoming > until):
                break
            if self.step():
                ran += 1
        return ran

    def clear(self) -> int:
        """Discard every pending event; returns how many were dropped."""
        dropped = len(self)
        self._heap.clear()
        return dropped
