"""Fault injection for simulated FL rounds.

A :class:`FaultPlan` decides, per ``(round, client)``, whether that client
misbehaves this round and how.  The taxonomy covers the failure modes a
TEE-backed FL fleet actually exhibits:

* ``drop`` — the client goes silent mid-round (crash, network partition);
* ``straggle`` — the client finishes, but far too late for the deadline;
* ``corrupt`` — the normal-world relay flips bits in the update payload
  (detected server-side, retried — the sealed path makes this loud);
* ``exhaust_pool`` — the enclave's secure memory pool runs out mid-cycle
  (the paper's 3–5 MB budget, §3.3) and local training aborts;
* ``fail_attestation`` — the device can no longer produce a valid quote
  (tampered TA, rolled-back firmware) and must be evicted.

Sampled faults are derived from ``(seed, round, client)`` alone — never from
query order or an evolving generator — so any subset of clients can be
interrogated in any order and two runs with the same seed realise the exact
same fault set.  Transient faults (``corrupt``, ``exhaust_pool``) hit only a
client's first attempt of the round, so bounded retry can win; ``drop`` and
``straggle`` persist for the round.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["FaultKind", "FaultRates", "FaultPlan"]

# Stream tags keeping fault draws independent of every other (seed, round)
# derived stream in the simulator.
_STREAM_FAULT = 0xFA017
_STREAM_SHARD_FAULT = 0xFA5D


class FaultKind(enum.Enum):
    """One way a simulated client can misbehave during a round."""

    DROP = "drop"
    STRAGGLE = "straggle"
    CORRUPT = "corrupt"
    EXHAUST_POOL = "exhaust_pool"
    FAIL_ATTESTATION = "fail_attestation"

    @property
    def transient(self) -> bool:
        """Whether a retry of the same round can succeed."""
        return self in (FaultKind.CORRUPT, FaultKind.EXHAUST_POOL)


@dataclass(frozen=True)
class FaultRates:
    """Per-round, per-client probability of each fault kind."""

    dropout: float = 0.0
    straggler: float = 0.0
    corrupt: float = 0.0
    pool_exhaust: float = 0.0
    attestation: float = 0.0

    def __post_init__(self) -> None:
        for field in fields(self):
            value = getattr(self, field.name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field.name} rate must be in [0, 1], got {value}")
        if self.total() > 1.0 + 1e-12:
            raise ValueError(f"fault rates sum to {self.total()} > 1")

    def total(self) -> float:
        return sum(getattr(self, field.name) for field in fields(self))

    # Fixed realisation order: a single uniform draw is bucketed against
    # these cumulative thresholds, so changing one rate never reshuffles
    # which clients realise the *other* kinds.
    def thresholds(self) -> Tuple[Tuple[float, FaultKind], ...]:
        out = []
        edge = 0.0
        for rate, kind in (
            (self.dropout, FaultKind.DROP),
            (self.straggler, FaultKind.STRAGGLE),
            (self.corrupt, FaultKind.CORRUPT),
            (self.pool_exhaust, FaultKind.EXHAUST_POOL),
            (self.attestation, FaultKind.FAIL_ATTESTATION),
        ):
            edge += rate
            if rate > 0:
                out.append((edge, kind))
        return tuple(out)


class FaultPlan:
    """Deterministic fault schedule: sampled rates plus explicit injections.

    Parameters
    ----------
    rates:
        Background fault probabilities applied to every (round, client).
    seed:
        Seed for the sampled realisation; the fault of a given
        ``(round, client)`` is a pure function of ``(seed, round, client)``.
    shard_down:
        Per-round probability that a *shard aggregator* (a node of the
        hierarchical aggregation tree, not a client) is dead for the whole
        round.  An upload arriving at a dead shard is lost — which feeds
        the client back into the ordinary retry/quorum machinery; retries
        are re-routed to a surviving shard.
    """

    def __init__(
        self,
        rates: Optional[FaultRates] = None,
        seed: int = 0,
        shard_down: float = 0.0,
    ) -> None:
        if not 0.0 <= shard_down <= 1.0:
            raise ValueError(f"shard_down rate must be in [0, 1], got {shard_down}")
        self.rates = rates or FaultRates()
        self.seed = int(seed)
        self.shard_down = float(shard_down)
        self._explicit: Dict[Tuple[int, int], Optional[FaultKind]] = {}
        self._explicit_shards: Dict[Tuple[int, int], bool] = {}

    def inject(self, round_index: int, client_index: int, kind) -> "FaultPlan":
        """Pin a specific fault (or ``None`` to force health) for one cell."""
        fault = FaultKind(kind) if kind is not None else None
        self._explicit[(int(round_index), int(client_index))] = fault
        return self

    def fault_for(self, round_index: int, client_index: int) -> Optional[FaultKind]:
        """The fault this client realises this round (None = healthy)."""
        key = (int(round_index), int(client_index))
        if key in self._explicit:
            return self._explicit[key]
        thresholds = self.rates.thresholds()
        if not thresholds:
            return None
        draw = float(
            np.random.default_rng((self.seed, _STREAM_FAULT, *key)).random()
        )
        for edge, kind in thresholds:
            if draw < edge:
                return kind
        return None

    def inject_shard(
        self, round_index: int, shard_index: int, down: bool = True
    ) -> "FaultPlan":
        """Pin a shard aggregator dead (or alive) for one round."""
        key = (int(round_index), int(shard_index))
        self._explicit_shards[key] = bool(down)
        return self

    def shard_fault_for(self, round_index: int, shard_index: int) -> bool:
        """Whether this shard aggregator is dead this round.

        Like client faults, a pure function of ``(seed, round, shard)`` —
        drawn from its own stream, so enabling shard faults never
        reshuffles which *clients* misbehave.
        """
        key = (int(round_index), int(shard_index))
        if key in self._explicit_shards:
            return self._explicit_shards[key]
        if self.shard_down <= 0.0:
            return False
        draw = float(
            np.random.default_rng((self.seed, _STREAM_SHARD_FAULT, *key)).random()
        )
        return draw < self.shard_down

    def describe(self) -> str:
        active = [
            f"{field.name}={getattr(self.rates, field.name):g}"
            for field in fields(self.rates)
            if getattr(self.rates, field.name) > 0
        ]
        if self.shard_down > 0:
            active.append(f"shard_down={self.shard_down:g}")
        pinned_cells = len(self._explicit) + len(self._explicit_shards)
        pinned = f", {pinned_cells} pinned" if pinned_cells else ""
        return f"FaultPlan(seed={self.seed}, {', '.join(active) or 'no faults'}{pinned})"
