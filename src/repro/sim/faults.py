"""Fault injection for simulated FL rounds.

A :class:`FaultPlan` decides, per ``(round, client)``, whether that client
misbehaves this round and how.  The taxonomy covers the failure modes a
TEE-backed FL fleet actually exhibits:

* ``drop`` — the client goes silent mid-round (crash, network partition);
* ``straggle`` — the client finishes, but far too late for the deadline;
* ``corrupt`` — the normal-world relay flips bits in the update payload
  (detected server-side, retried — the sealed path makes this loud);
* ``exhaust_pool`` — the enclave's secure memory pool runs out mid-cycle
  (the paper's 3–5 MB budget, §3.3) and local training aborts;
* ``fail_attestation`` — the device can no longer produce a valid quote
  (tampered TA, rolled-back firmware) and must be evicted.

Sampled faults are derived from ``(seed, round, client)`` alone — never from
query order or an evolving generator — so any subset of clients can be
interrogated in any order and two runs with the same seed realise the exact
same fault set.  Transient faults (``corrupt``, ``exhaust_pool``) hit only a
client's first attempt of the round, so bounded retry can win; ``drop`` and
``straggle`` persist for the round.

Beyond crash-style faults, a plan can mark a fraction of the fleet
**Byzantine** (:class:`AttackKind`): those clients still complete the round
on time, but the *update they produce* is hostile — sign-flipped, scaled,
noise-drowned, or a colluding copy of a shared poisoned payload.  Attacker
identity is persistent (drawn once per client from its own stream) so the
same clients attack every round and the server's reputation ledger can
catch repeat offenders; the attack payload's randomness is keyed on
``(seed, round, client)`` like everything else, so a retried attempt
re-sends the exact same poisoned bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["FaultKind", "FaultRates", "FaultPlan", "AttackKind", "apply_attack"]

# Stream tags keeping fault draws independent of every other (seed, round)
# derived stream in the simulator.
_STREAM_FAULT = 0xFA017
_STREAM_SHARD_FAULT = 0xFA5D
_STREAM_ATTACKER = 0xB12A7
_STREAM_ATTACK_PAYLOAD = 0xB12A8


class FaultKind(enum.Enum):
    """One way a simulated client can misbehave during a round."""

    DROP = "drop"
    STRAGGLE = "straggle"
    CORRUPT = "corrupt"
    EXHAUST_POOL = "exhaust_pool"
    FAIL_ATTESTATION = "fail_attestation"

    @property
    def transient(self) -> bool:
        """Whether a retry of the same round can succeed."""
        return self in (FaultKind.CORRUPT, FaultKind.EXHAUST_POOL)


class AttackKind(enum.Enum):
    """One way a Byzantine client poisons the update it produces.

    All attacks transform the client's honest *delta* (``update − global``);
    the attacker behaves normally at the protocol level — attests, meets
    deadlines — so only admission control and robust aggregation can stop
    it.

    * ``sign_flip`` — send ``global − delta``: norm-preserving (slips past
      any norm ceiling), pulls plain FedAvg straight away from the honest
      direction;
    * ``scale`` — send ``global + λ·delta``: the classic model-replacement
      boost; loud under a norm ceiling, devastating without one;
    * ``gauss_noise`` — drown the delta in large seeded Gaussian noise;
    * ``collude`` — every colluder sends the *same* crafted payload (drawn
      once per round, no client in the key), concentrating their mass on
      one poisoned point — the case that stresses Krum's neighbour scoring
      and its lowest-index tie-break.
    """

    SIGN_FLIP = "sign_flip"
    SCALE = "scale"
    GAUSS_NOISE = "gauss_noise"
    COLLUDE = "collude"


def apply_attack(
    kind: AttackKind,
    delta: np.ndarray,
    *,
    seed: int,
    round_index: int,
    client_index: int,
    strength: float = 10.0,
) -> np.ndarray:
    """The poisoned delta a Byzantine client sends instead of ``delta``.

    A pure function of ``(kind, delta, seed, round, client, strength)`` —
    ``collude`` drops the client from the key so all colluders of a round
    produce bitwise-identical payloads.
    """
    kind = AttackKind(kind)
    if kind is AttackKind.SIGN_FLIP:
        return -delta
    if kind is AttackKind.SCALE:
        return float(strength) * delta
    if kind is AttackKind.GAUSS_NOISE:
        rng = np.random.default_rng(
            (int(seed), _STREAM_ATTACK_PAYLOAD, int(round_index), int(client_index))
        )
        rms = (
            float(np.linalg.norm(delta)) / float(np.sqrt(delta.size))
            if delta.size
            else 0.0
        )
        return delta + float(strength) * rms * rng.standard_normal(delta.shape)
    rng = np.random.default_rng(
        (int(seed), _STREAM_ATTACK_PAYLOAD, int(round_index))
    )
    magnitude = float(strength) * float(np.linalg.norm(delta))
    direction = rng.standard_normal(delta.shape)
    norm = float(np.linalg.norm(direction))
    return (magnitude / norm) * direction if norm > 0 else delta


@dataclass(frozen=True)
class FaultRates:
    """Per-round, per-client probability of each fault kind."""

    dropout: float = 0.0
    straggler: float = 0.0
    corrupt: float = 0.0
    pool_exhaust: float = 0.0
    attestation: float = 0.0

    def __post_init__(self) -> None:
        for field in fields(self):
            value = getattr(self, field.name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field.name} rate must be in [0, 1], got {value}")
        if self.total() > 1.0 + 1e-12:
            raise ValueError(f"fault rates sum to {self.total()} > 1")

    def total(self) -> float:
        return sum(getattr(self, field.name) for field in fields(self))

    # Fixed realisation order: a single uniform draw is bucketed against
    # these cumulative thresholds, so changing one rate never reshuffles
    # which clients realise the *other* kinds.
    def thresholds(self) -> Tuple[Tuple[float, FaultKind], ...]:
        out = []
        edge = 0.0
        for rate, kind in (
            (self.dropout, FaultKind.DROP),
            (self.straggler, FaultKind.STRAGGLE),
            (self.corrupt, FaultKind.CORRUPT),
            (self.pool_exhaust, FaultKind.EXHAUST_POOL),
            (self.attestation, FaultKind.FAIL_ATTESTATION),
        ):
            edge += rate
            if rate > 0:
                out.append((edge, kind))
        return tuple(out)


class FaultPlan:
    """Deterministic fault schedule: sampled rates plus explicit injections.

    Parameters
    ----------
    rates:
        Background fault probabilities applied to every (round, client).
    seed:
        Seed for the sampled realisation; the fault of a given
        ``(round, client)`` is a pure function of ``(seed, round, client)``.
    shard_down:
        Per-round probability that a *shard aggregator* (a node of the
        hierarchical aggregation tree, not a client) is dead for the whole
        round.  An upload arriving at a dead shard is lost — which feeds
        the client back into the ordinary retry/quorum machinery; retries
        are re-routed to a surviving shard.
    byzantine / attack / attack_strength:
        Fraction of the fleet that is Byzantine, which :class:`AttackKind`
        they mount, and the attack's strength parameter (λ for ``scale``,
        the noise/offset multiplier otherwise).  Attacker identity is
        drawn once per client from ``(seed, client)`` on a dedicated
        stream — persistent across rounds, so reputation tracking bites —
        and is independent of the crash-fault draws.
    """

    def __init__(
        self,
        rates: Optional[FaultRates] = None,
        seed: int = 0,
        shard_down: float = 0.0,
        byzantine: float = 0.0,
        attack="sign_flip",
        attack_strength: float = 10.0,
    ) -> None:
        if not 0.0 <= shard_down <= 1.0:
            raise ValueError(f"shard_down rate must be in [0, 1], got {shard_down}")
        if not 0.0 <= byzantine <= 1.0:
            raise ValueError(f"byzantine rate must be in [0, 1], got {byzantine}")
        self.rates = rates or FaultRates()
        self.seed = int(seed)
        self.shard_down = float(shard_down)
        self.byzantine = float(byzantine)
        self.attack = AttackKind(attack)
        self.attack_strength = float(attack_strength)
        self._explicit: Dict[Tuple[int, int], Optional[FaultKind]] = {}
        self._explicit_shards: Dict[Tuple[int, int], bool] = {}
        self._explicit_attackers: Dict[int, Optional[AttackKind]] = {}

    def inject(self, round_index: int, client_index: int, kind) -> "FaultPlan":
        """Pin a specific fault (or ``None`` to force health) for one cell."""
        fault = FaultKind(kind) if kind is not None else None
        self._explicit[(int(round_index), int(client_index))] = fault
        return self

    def fault_for(self, round_index: int, client_index: int) -> Optional[FaultKind]:
        """The fault this client realises this round (None = healthy)."""
        key = (int(round_index), int(client_index))
        if key in self._explicit:
            return self._explicit[key]
        thresholds = self.rates.thresholds()
        if not thresholds:
            return None
        draw = float(
            np.random.default_rng((self.seed, _STREAM_FAULT, *key)).random()
        )
        for edge, kind in thresholds:
            if draw < edge:
                return kind
        return None

    def inject_attack(self, client_index: int, kind) -> "FaultPlan":
        """Pin one client Byzantine (or ``None`` to force honesty)."""
        attack = AttackKind(kind) if kind is not None else None
        self._explicit_attackers[int(client_index)] = attack
        return self

    def attack_for(self, client_index: int) -> Optional[AttackKind]:
        """The attack this client mounts every round (None = honest).

        A pure function of ``(seed, client)`` on its own stream: attacker
        identity never depends on the round, on query order, or on which
        crash faults realised — so raising ``byzantine`` from 0.2 to 0.3
        only *adds* attackers, it never reshuffles the existing ones.
        """
        key = int(client_index)
        if key in self._explicit_attackers:
            return self._explicit_attackers[key]
        if self.byzantine <= 0.0:
            return None
        draw = float(
            np.random.default_rng((self.seed, _STREAM_ATTACKER, key)).random()
        )
        return self.attack if draw < self.byzantine else None

    def attack_delta(
        self, round_index: int, client_index: int, delta: np.ndarray
    ) -> np.ndarray:
        """Apply this client's attack to its honest flat delta."""
        kind = self.attack_for(client_index)
        if kind is None:
            return delta
        return apply_attack(
            kind,
            delta,
            seed=self.seed,
            round_index=round_index,
            client_index=client_index,
            strength=self.attack_strength,
        )

    def delay_factor(
        self, round_index: int, client_index: int, straggler_factor: float
    ) -> float:
        """Slow-down multiplier this client's attempt experiences.

        ``straggler_factor`` when ``(round, client)`` realises
        :attr:`FaultKind.STRAGGLE`, else exactly ``1.0``.  The sync engine
        uses it against the round deadline (the straggler misses and is
        dropped); the async engine uses the *same* factor but has no
        deadline — the slow update arrives late, is genuinely stale
        (staleness > 0 if commits advanced meanwhile), and is folded in
        with its staleness weight instead of being discarded.
        """
        if self.fault_for(round_index, client_index) is FaultKind.STRAGGLE:
            return float(straggler_factor)
        return 1.0

    def inject_shard(
        self, round_index: int, shard_index: int, down: bool = True
    ) -> "FaultPlan":
        """Pin a shard aggregator dead (or alive) for one round."""
        key = (int(round_index), int(shard_index))
        self._explicit_shards[key] = bool(down)
        return self

    def shard_fault_for(self, round_index: int, shard_index: int) -> bool:
        """Whether this shard aggregator is dead this round.

        Like client faults, a pure function of ``(seed, round, shard)`` —
        drawn from its own stream, so enabling shard faults never
        reshuffles which *clients* misbehave.
        """
        key = (int(round_index), int(shard_index))
        if key in self._explicit_shards:
            return self._explicit_shards[key]
        if self.shard_down <= 0.0:
            return False
        draw = float(
            np.random.default_rng((self.seed, _STREAM_SHARD_FAULT, *key)).random()
        )
        return draw < self.shard_down

    def describe(self) -> str:
        active = [
            f"{field.name}={getattr(self.rates, field.name):g}"
            for field in fields(self.rates)
            if getattr(self.rates, field.name) > 0
        ]
        if self.shard_down > 0:
            active.append(f"shard_down={self.shard_down:g}")
        if self.byzantine > 0:
            active.append(f"byzantine={self.byzantine:g}:{self.attack.value}")
        pinned_cells = (
            len(self._explicit)
            + len(self._explicit_shards)
            + len(self._explicit_attackers)
        )
        pinned = f", {pinned_cells} pinned" if pinned_cells else ""
        return f"FaultPlan(seed={self.seed}, {', '.join(active) or 'no faults'}{pinned})"
