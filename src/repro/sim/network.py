"""Parameterized client-network model.

Each simulated participant gets a fixed last-mile profile — propagation
latency and uplink/downlink bandwidth — drawn once from a seeded
``numpy.random.Generator``.  Transfer time is then a pure function of the
payload size the FL transport actually reports
(:meth:`~repro.fl.transport.ModelDownload.wire_bytes` /
:meth:`~repro.fl.transport.ClientUpdate.wire_bytes`), so shrinking a model
or sealing fewer layers measurably shortens simulated rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["NetworkModel"]


@dataclass
class NetworkModel:
    """Per-client latency/bandwidth table indexed by client position.

    Attributes
    ----------
    latency_seconds:
        One-way propagation delay per client (charged once per message).
    bandwidth_bytes_per_second:
        Link throughput per client (same both directions — mobile uplink
        asymmetry is a calibration knob, not a structural one).
    """

    latency_seconds: np.ndarray
    bandwidth_bytes_per_second: np.ndarray

    def __post_init__(self) -> None:
        self.latency_seconds = np.asarray(self.latency_seconds, dtype=np.float64)
        self.bandwidth_bytes_per_second = np.asarray(
            self.bandwidth_bytes_per_second, dtype=np.float64
        )
        if self.latency_seconds.shape != self.bandwidth_bytes_per_second.shape:
            raise ValueError("latency and bandwidth tables must align")
        if (self.latency_seconds < 0).any():
            raise ValueError("latencies cannot be negative")
        if (self.bandwidth_bytes_per_second <= 0).any():
            raise ValueError("bandwidths must be positive")

    @property
    def num_clients(self) -> int:
        return int(self.latency_seconds.shape[0])

    @classmethod
    def sample(
        cls,
        num_clients: int,
        rng: np.random.Generator,
        median_latency_seconds: float = 0.08,
        latency_sigma: float = 0.6,
        min_bandwidth: float = 0.5e6,
        max_bandwidth: float = 8e6,
    ) -> "NetworkModel":
        """Draw a fleet of client links from a seeded generator.

        Latency is log-normal (long tail of bad links, like real mobile
        populations); bandwidth is uniform between the two bounds.  The same
        generator state always yields the same fleet.
        """
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        latency = rng.lognormal(
            mean=math.log(median_latency_seconds), sigma=latency_sigma, size=num_clients
        )
        bandwidth = rng.uniform(min_bandwidth, max_bandwidth, size=num_clients)
        return cls(latency, bandwidth)

    def transfer_seconds(self, client_index: int, num_bytes: int) -> float:
        """Simulated one-way transfer time of ``num_bytes`` to/from a client."""
        if num_bytes < 0:
            raise ValueError("num_bytes cannot be negative")
        return float(
            self.latency_seconds[client_index]
            + num_bytes / self.bandwidth_bytes_per_second[client_index]
        )
