"""Simulated ARM TrustZone substrate.

Provides the security boundary GradSec relies on (worlds, secure memory,
shielded buffers, SMC dispatch), the OP-TEE-style services (secure storage,
trusted I/O path, remote attestation), and the calibrated device cost model
that regenerates the paper's overhead numbers.
"""

from .attestation import AttestationDevice, AttestationVerifier, Quote
from .costmodel import CostModel, CycleCost
from .iopath import TrustedIOPath
from .memory import DEFAULT_CAPACITY_BYTES, SecureMemoryPool, ShieldedBuffer
from .monitor import SecureMonitor, Session, SMCStats
from .profiles import RASPBERRY_PI_3B, DeviceProfile
from .storage import (
    BackendCrash,
    FaultInjectedBackend,
    InMemoryBackend,
    ReeFsBackend,
    RollbackError,
    SecureStorage,
    StorageBackend,
)
from .trusted_app import TrustedApplication
from .world import (
    AttestationError,
    IntegrityError,
    SecureMemoryExhausted,
    SecureWorldViolation,
    TEEError,
    World,
    current_world,
    require_secure_world,
    secure_world,
)

__all__ = [
    "World", "current_world", "secure_world", "require_secure_world",
    "TEEError", "SecureWorldViolation", "SecureMemoryExhausted",
    "IntegrityError", "AttestationError",
    "SecureMemoryPool", "ShieldedBuffer", "DEFAULT_CAPACITY_BYTES",
    "SecureMonitor", "SMCStats", "Session", "TrustedApplication",
    "SecureStorage", "InMemoryBackend", "ReeFsBackend", "StorageBackend",
    "FaultInjectedBackend", "RollbackError", "BackendCrash",
    "AttestationDevice", "AttestationVerifier", "Quote",
    "TrustedIOPath",
    "CostModel", "CycleCost", "DeviceProfile", "RASPBERRY_PI_3B",
]
