"""Remote attestation.

TrustZone has no native attestation, so the paper points at add-on solutions
(WaTZ, or a TPM-like root of trust).  The simulator models the standard
measure-quote-verify protocol:

1. the device holds an attestation key provisioned by a manufacturer CA;
2. the TEE *measures* a trusted application (digest of its code surface);
3. a verifier sends a fresh nonce and receives a :class:`Quote` binding
   measurement + nonce under the device key;
4. the verifier checks the signature, the nonce (replay protection) and the
   measurement against an allow-list.

The FL server uses this during client selection (§5 step 1) to only admit
TEE-capable clients running the expected GradSec TA.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass
from typing import Dict, Optional, Set

from .trusted_app import TrustedApplication
from .world import AttestationError

__all__ = ["Quote", "AttestationDevice", "AttestationVerifier"]


@dataclass(frozen=True)
class Quote:
    """A signed attestation statement."""

    device_id: str
    measurement: str
    nonce: bytes
    signature: bytes

    def payload(self) -> bytes:
        return self.device_id.encode() + bytes.fromhex(self.measurement) + self.nonce


class AttestationDevice:
    """Device-side attestation: holds the key, produces quotes."""

    def __init__(self, device_id: str, attestation_key: Optional[bytes] = None) -> None:
        self.device_id = device_id
        self._key = attestation_key or secrets.token_bytes(32)

    @property
    def key(self) -> bytes:
        """The symmetric attestation key (shared with the verifier's CA)."""
        return self._key

    def quote(self, ta: TrustedApplication, nonce: bytes) -> Quote:
        """Produce a quote over ``ta``'s measurement and a verifier nonce."""
        measurement = ta.measurement()
        body = self.device_id.encode() + bytes.fromhex(measurement) + nonce
        signature = hmac.new(self._key, body, hashlib.sha256).digest()
        return Quote(self.device_id, measurement, nonce, signature)


class AttestationVerifier:
    """Server-side verifier with a key registry and a measurement allow-list."""

    def __init__(self) -> None:
        self._device_keys: Dict[str, bytes] = {}
        self._allowed: Set[str] = set()
        self._outstanding: Dict[str, bytes] = {}

    def register_device(self, device_id: str, key: bytes) -> None:
        """Trust a device's attestation key (manufacturer provisioning)."""
        self._device_keys[device_id] = key

    def allow_measurement(self, measurement: str) -> None:
        """Accept TAs whose code measures to ``measurement``."""
        self._allowed.add(measurement)

    def challenge(self, device_id: str) -> bytes:
        """Issue a fresh nonce for ``device_id``."""
        nonce = secrets.token_bytes(16)
        self._outstanding[device_id] = nonce
        return nonce

    def verify(self, quote: Quote) -> bool:
        """Check a quote; raises :class:`AttestationError` on any failure."""
        key = self._device_keys.get(quote.device_id)
        if key is None:
            raise AttestationError(f"unknown device {quote.device_id!r}")
        expected_nonce = self._outstanding.pop(quote.device_id, None)
        if expected_nonce is None or not hmac.compare_digest(expected_nonce, quote.nonce):
            raise AttestationError(
                f"stale or missing nonce for device {quote.device_id!r}"
            )
        expected_sig = hmac.new(key, quote.payload(), hashlib.sha256).digest()
        if not hmac.compare_digest(expected_sig, quote.signature):
            raise AttestationError(f"bad signature from device {quote.device_id!r}")
        if quote.measurement not in self._allowed:
            raise AttestationError(
                f"measurement {quote.measurement[:16]}… is not on the allow-list"
            )
        return True
