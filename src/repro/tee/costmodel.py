"""Analytical cost model for shielded training (Table 6 / Figures 7–8).

Wall-clock time on the paper's Raspberry Pi cannot be measured here, so this
model computes, from layer shapes and a :class:`DeviceProfile`, the three
components the paper reports per FL cycle:

* **user time** — computation of unprotected layers in the normal world;
* **kernel time** — computation of protected layers inside the enclave
  (slower per FLOP) plus the world-switch cost of crossing the boundary;
* **allocation time** — enclave ``malloc`` for protected weights, a
  superlinear function of the parameter count (this is the term that makes
  protecting LeNet-5's dense L5 cost 4.7 s per cycle).

It also computes the secure-memory footprint of a protected set, which the
paper measures by instrumenting DarkneTZ's mallocs and which here follows
from shapes (``W + dW + A_{l-1} + Z_l + delta_l`` per protected layer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..obs import get_registry
from ..nn.model import Sequential
from .profiles import RASPBERRY_PI_3B, DeviceProfile
from .world import SecureMemoryExhausted

__all__ = ["CycleCost", "CostModel"]


@dataclass(frozen=True)
class CycleCost:
    """Cost of one FL training cycle, matching Table 6's columns."""

    user_seconds: float
    kernel_seconds: float
    alloc_seconds: float
    tee_memory_bytes: int

    @property
    def total_seconds(self) -> float:
        return self.user_seconds + self.kernel_seconds + self.alloc_seconds

    @property
    def tee_memory_mib(self) -> float:
        return self.tee_memory_bytes / (1024.0 * 1024.0)

    def overhead_percent(self, baseline: "CycleCost") -> float:
        """Training-time overhead relative to an unprotected baseline."""
        return 100.0 * (self.total_seconds - baseline.total_seconds) / baseline.total_seconds

    def scaled(self, weight: float) -> "CycleCost":
        return CycleCost(
            self.user_seconds * weight,
            self.kernel_seconds * weight,
            self.alloc_seconds * weight,
            int(self.tee_memory_bytes * weight),
        )

    def plus(self, other: "CycleCost") -> "CycleCost":
        return CycleCost(
            self.user_seconds + other.user_seconds,
            self.kernel_seconds + other.kernel_seconds,
            self.alloc_seconds + other.alloc_seconds,
            self.tee_memory_bytes + other.tee_memory_bytes,
        )


class CostModel:
    """Computes per-cycle training cost for a model under a protection set.

    Parameters
    ----------
    profile:
        Device calibration constants (default: the paper's Raspberry Pi).
    batch_size:
        Training batch size (the paper's Table 6 uses 32).
    batches_per_cycle:
        Local batches per FL cycle (1 reproduces Table 6's scale).
    """

    def __init__(
        self,
        profile: DeviceProfile = RASPBERRY_PI_3B,
        batch_size: int = 32,
        batches_per_cycle: int = 1,
    ) -> None:
        self.profile = profile
        self.batch_size = int(batch_size)
        self.batches_per_cycle = int(batches_per_cycle)

    # ------------------------------------------------------------------
    def _layer_flops(self, model: Sequential) -> List[float]:
        factor = self.profile.training_flops_factor()
        return [
            layer.flops_per_sample() * factor * self.batch_size * self.batches_per_cycle
            for layer in model.layers
        ]

    def tee_memory_bytes(self, model: Sequential, protected: Iterable[int]) -> int:
        """Secure memory needed to shield layers ``protected`` (1-based)."""
        return sum(
            model.layer(i).tee_memory_bytes(self.batch_size) for i in set(protected)
        )

    def check_fits(self, model: Sequential, protected: Iterable[int]) -> None:
        """Raise :class:`SecureMemoryExhausted` if the set exceeds the pool."""
        needed = self.tee_memory_bytes(model, protected)
        if needed > self.profile.secure_memory_bytes:
            get_registry().counter(
                "tee.costmodel.rejected_sets",
                "protected sets refused for exceeding device secure memory",
            ).inc(profile=self.profile.name)
            raise SecureMemoryExhausted(
                f"protected set needs {needed} B but device "
                f"{self.profile.name!r} has {self.profile.secure_memory_bytes} B"
            )

    def cycle_cost(self, model: Sequential, protected: Iterable[int] = ()) -> CycleCost:
        """Cost of one FL cycle with ``protected`` layer indices (1-based)."""
        protected_set = set(protected)
        for index in protected_set:
            model.layer(index)  # validates the index range
        flops = self._layer_flops(model)
        profile = self.profile

        user = sum(
            f for i, f in enumerate(flops, start=1) if i not in protected_set
        ) * profile.ree_seconds_per_flop
        kernel = profile.kernel_base_seconds
        kernel += sum(
            f for i, f in enumerate(flops, start=1) if i in protected_set
        ) * profile.tee_seconds_per_flop
        kernel += len(protected_set) * profile.world_switch_seconds
        alloc = sum(
            profile.alloc_seconds(model.layer(i).weight_param_count)
            for i in protected_set
        )
        memory = self.tee_memory_bytes(model, protected_set)
        cost = CycleCost(user, kernel, alloc, memory)
        registry = get_registry()
        registry.counter(
            "tee.costmodel.evaluations", "analytical cycle-cost evaluations"
        ).inc(profile=profile.name)
        registry.histogram(
            "tee.costmodel.cycle_seconds", "modelled per-cycle device time"
        ).observe(cost.total_seconds, profile=profile.name)
        return cost

    # ------------------------------------------------------------------
    def dynamic_cost(
        self,
        model: Sequential,
        windows: Sequence[Tuple[int, ...]],
        probabilities: Sequence[float],
    ) -> Tuple[CycleCost, Dict[Tuple[int, ...], CycleCost]]:
        """Average cost of dynamic GradSec over a moving-window schedule.

        Mirrors the paper's §8.3 accounting: training time is the
        probability-weighted average over window positions, while the
        reported TEE memory is the *most expensive* position (worst case).

        Returns the averaged cost and the per-window breakdown.
        """
        if len(windows) != len(probabilities):
            raise ValueError("windows and probabilities must align")
        total_p = float(sum(probabilities))
        if abs(total_p - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1 (got {total_p})")
        per_window: Dict[Tuple[int, ...], CycleCost] = {}
        avg = CycleCost(0.0, 0.0, 0.0, 0)
        worst_memory = 0
        for window, p in zip(windows, probabilities):
            cost = self.cycle_cost(model, window)
            per_window[tuple(window)] = cost
            avg = avg.plus(cost.scaled(p))
            worst_memory = max(worst_memory, cost.tee_memory_bytes)
        avg = CycleCost(
            avg.user_seconds, avg.kernel_seconds, avg.alloc_seconds, worst_memory
        )
        return avg, per_window
