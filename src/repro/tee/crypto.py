"""Simulator cryptography.

The real OP-TEE uses AES-GCM and hardware-fused keys.  Offline and without
third-party crypto libraries, the simulator builds an authenticated stream
cipher from the standard library's HMAC-SHA256:

* keystream blocks ``HMAC(key, nonce || counter)`` XORed with the plaintext
  (CTR-mode construction), plus
* an encrypt-then-MAC tag ``HMAC(mac_key, nonce || ciphertext)``.

This is not meant to resist real cryptanalysis — it exists so that the
secure-storage and trusted-I/O *protocols* (key hierarchy, nonce handling,
tamper detection, atomic updates) are faithfully exercised end to end.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

__all__ = ["derive_key", "encrypt", "decrypt", "random_key", "SealedBlob", "CryptoError"]

KEY_BYTES = 32
NONCE_BYTES = 16
TAG_BYTES = 32
_BLOCK = 32  # SHA-256 digest size


class CryptoError(Exception):
    """Decryption failed (bad key or tampered ciphertext)."""


@dataclass(frozen=True)
class SealedBlob:
    """An encrypted, authenticated payload."""

    nonce: bytes
    ciphertext: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        return self.nonce + self.tag + self.ciphertext

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SealedBlob":
        if len(blob) < NONCE_BYTES + TAG_BYTES:
            raise CryptoError("sealed blob too short")
        return cls(
            nonce=blob[:NONCE_BYTES],
            tag=blob[NONCE_BYTES : NONCE_BYTES + TAG_BYTES],
            ciphertext=blob[NONCE_BYTES + TAG_BYTES :],
        )


def random_key(rng_bytes: int = KEY_BYTES) -> bytes:
    """Fresh random key (e.g. a per-object File Encryption Key)."""
    return secrets.token_bytes(rng_bytes)


def derive_key(parent: bytes, *context: bytes) -> bytes:
    """HKDF-style one-step key derivation: ``HMAC(parent, ctx0 || 0x1f || ...)``.

    Used for the paper's key hierarchy: the Trusted-Application Storage Key
    (TSK) is derived from the per-device Secure Storage Key (SSK) and the
    TA's UUID (§7.3).
    """
    info = b"\x1f".join(context)
    return hmac.new(parent, info, hashlib.sha256).digest()


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    for counter in range((length + _BLOCK - 1) // _BLOCK):
        blocks.append(
            hmac.new(key, nonce + counter.to_bytes(8, "big"), hashlib.sha256).digest()
        )
    return b"".join(blocks)[:length]


def encrypt(key: bytes, plaintext: bytes, nonce: bytes | None = None) -> SealedBlob:
    """Authenticated encryption (CTR + encrypt-then-MAC)."""
    if len(key) != KEY_BYTES:
        raise ValueError(f"key must be {KEY_BYTES} bytes")
    nonce = secrets.token_bytes(NONCE_BYTES) if nonce is None else nonce
    if len(nonce) != NONCE_BYTES:
        raise ValueError(f"nonce must be {NONCE_BYTES} bytes")
    enc_key = derive_key(key, b"enc")
    mac_key = derive_key(key, b"mac")
    stream = _keystream(enc_key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac.new(mac_key, nonce + ciphertext, hashlib.sha256).digest()
    return SealedBlob(nonce=nonce, ciphertext=ciphertext, tag=tag)


def decrypt(key: bytes, blob: SealedBlob) -> bytes:
    """Verify and decrypt; raises :class:`CryptoError` on any tampering."""
    if len(key) != KEY_BYTES:
        raise ValueError(f"key must be {KEY_BYTES} bytes")
    enc_key = derive_key(key, b"enc")
    mac_key = derive_key(key, b"mac")
    expected = hmac.new(mac_key, blob.nonce + blob.ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(expected, blob.tag):
        raise CryptoError("authentication tag mismatch (tampered or wrong key)")
    stream = _keystream(enc_key, blob.nonce, len(blob.ciphertext))
    return bytes(c ^ s for c, s in zip(blob.ciphertext, stream))
