"""Trusted I/O path.

§7.3: the FL server must hand the protected layers' weights to the enclave
without the normal world ever seeing the plaintext, and receive the
protected layers' updates the same way.  The simulator models this as an
authenticated-encryption channel whose key is shared between the FL server
and the client's secure world (established after a successful attestation),
with the normal world acting as an opaque relay.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..nn.serialize import weights_from_bytes, weights_to_bytes
from . import crypto
from .memory import SecureMemoryPool, ShieldedBuffer
from .world import require_secure_world

__all__ = ["TrustedIOPath", "SealedWeights"]

SealedWeights = bytes


class TrustedIOPath:
    """One end-to-end secure channel between FL server and client enclave.

    The same object is used on both sides of the (simulated) network; the
    security split is enforced by *where* each method may run:
    ``seal``/``unseal_remote`` model the server, while ``unseal_to_enclave``
    and ``seal_from_enclave`` only execute in the secure world.
    """

    def __init__(self, session_key: bytes | None = None) -> None:
        self.session_key = session_key or crypto.random_key()

    # -- server side ----------------------------------------------------
    def seal(self, weights) -> SealedWeights:
        """Server: encrypt per-layer weights for the client enclave."""
        return crypto.encrypt(self.session_key, weights_to_bytes(weights)).to_bytes()

    def unseal_remote(self, blob: SealedWeights):
        """Server: decrypt an update coming back from the client enclave."""
        return weights_from_bytes(
            crypto.decrypt(self.session_key, crypto.SealedBlob.from_bytes(blob))
        )

    # -- enclave side -----------------------------------------------------
    def unseal_to_enclave(
        self, blob: SealedWeights, pool: SecureMemoryPool
    ) -> Dict[Tuple[int, str], ShieldedBuffer]:
        """Enclave: decrypt weights straight into shielded buffers.

        Returns a mapping from ``(layer_index, param_name)`` — 0-based layer
        index — to the shielded buffer now holding that parameter.  Must run
        in the secure world; the plaintext never exists outside it.
        """
        require_secure_world("unsealing weights into the enclave")
        weights = weights_from_bytes(
            crypto.decrypt(self.session_key, crypto.SealedBlob.from_bytes(blob))
        )
        buffers: Dict[Tuple[int, str], ShieldedBuffer] = {}
        for index, layer_weights in enumerate(weights):
            for name, value in layer_weights.items():
                value = np.asarray(value)
                buffers[(index, name)] = ShieldedBuffer(
                    pool,
                    value,
                    label=f"layer{index}.{name}",
                    nbytes_override=value.size * 4,  # device stores float32
                )
        return buffers

    def seal_from_enclave(
        self, buffers: Dict[Tuple[int, str], ShieldedBuffer], n_layers: int
    ) -> SealedWeights:
        """Enclave: seal shielded parameters for transmission to the server."""
        require_secure_world("sealing weights from the enclave")
        weights = [dict() for _ in range(n_layers)]
        for (index, name), buffer in buffers.items():
            weights[index][name] = buffer.read()
        return crypto.encrypt(self.session_key, weights_to_bytes(weights)).to_bytes()
