"""Secure memory pool and shielded buffers.

The pool models TrustZone's scarce secure RAM: a fixed capacity (default
4 MiB, in the paper's stated 3–5 MB range), explicit allocation/free, a peak
watermark (what Table 6 reports), and hard failure on exhaustion.

A :class:`ShieldedBuffer` is the simulator's confidentiality primitive: the
payload array is only readable while the secure world is active.  Reading it
from the normal world — which is what a memory-scraper attacker would do —
raises :class:`~repro.tee.world.SecureWorldViolation`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..obs import get_registry
from .world import (
    SecureMemoryExhausted,
    SecureWorldViolation,
    current_world,
    require_secure_world,
    World,
)

__all__ = ["SecureMemoryPool", "ShieldedBuffer", "DEFAULT_CAPACITY_BYTES"]

DEFAULT_CAPACITY_BYTES = 4 * 1024 * 1024  # 4 MiB, mid-range of the paper's 3-5 MB


class SecureMemoryPool:
    """Capacity-limited allocator for secure-world memory.

    Parameters
    ----------
    capacity_bytes:
        Total secure memory available to trusted applications.
    name:
        Label under which this pool reports ``tee.pool.*`` metrics
        (occupancy, high-water mark, allocation/exhaustion counts).  FL
        clients name their pool after the client id, so per-device secure
        memory is observable; anonymous pools share the ``"default"``
        series.
    """

    def __init__(
        self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES, name: str = "default"
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.name = str(name)
        self._allocations: Dict[int, int] = {}
        self._next_handle = 1
        self.used_bytes = 0
        self.peak_bytes = 0
        self.allocation_count = 0
        get_registry().gauge(
            "tee.pool.capacity_bytes", "secure memory pool capacity"
        ).set(self.capacity_bytes, pool=self.name)

    def _publish_occupancy(self) -> None:
        registry = get_registry()
        registry.gauge("tee.pool.used_bytes", "secure memory in use").set(
            self.used_bytes, pool=self.name
        )
        registry.gauge(
            "tee.pool.peak_bytes", "secure memory high-water mark"
        ).set_max(self.peak_bytes, pool=self.name)

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, num_bytes: int) -> int:
        """Reserve ``num_bytes``; returns an allocation handle.

        Raises
        ------
        SecureMemoryExhausted
            If the pool cannot satisfy the request — the enclave-side
            equivalent of ``malloc`` returning NULL in DarkneTZ.
        """
        num_bytes = int(num_bytes)
        if num_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        if num_bytes > self.free_bytes:
            get_registry().counter(
                "tee.pool.exhaustions", "allocations refused for lack of space"
            ).inc(pool=self.name)
            raise SecureMemoryExhausted(
                f"requested {num_bytes} B but only {self.free_bytes} B of "
                f"{self.capacity_bytes} B secure memory is free"
            )
        handle = self._next_handle
        self._next_handle += 1
        self._allocations[handle] = num_bytes
        self.used_bytes += num_bytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        self.allocation_count += 1
        get_registry().counter(
            "tee.pool.allocations", "successful secure memory allocations"
        ).inc(pool=self.name)
        self._publish_occupancy()
        return handle

    def release(self, handle: int) -> None:
        """Free a previous allocation (idempotent errors are loud)."""
        size = self._allocations.pop(handle, None)
        if size is None:
            raise KeyError(f"unknown or already-released allocation {handle}")
        self.used_bytes -= size
        self._publish_occupancy()

    def reset_peak(self) -> None:
        """Start a fresh peak-watermark measurement (per FL cycle)."""
        self.peak_bytes = self.used_bytes


class ShieldedBuffer:
    """A numpy array living in secure memory.

    The payload is reachable via :meth:`read` / :meth:`write` only while the
    secure world is active.  ``data``/``numpy()`` style access from the
    normal world raises, so any code path that would leak the plaintext to a
    normal-world attacker fails closed.
    """

    def __init__(
        self,
        pool: SecureMemoryPool,
        array: np.ndarray,
        label: str = "",
        nbytes_override: Optional[int] = None,
    ) -> None:
        array = np.asarray(array)
        self._pool = pool
        # The simulator computes in float64 for numerical fidelity, but the
        # device stores float32; callers pass nbytes_override to charge the
        # pool what the real enclave would allocate.
        charged = int(array.nbytes if nbytes_override is None else nbytes_override)
        self._handle = pool.allocate(charged)
        self._array: Optional[np.ndarray] = array.copy()
        self.label = label
        self.shape = array.shape
        self.nbytes = charged

    @property
    def released(self) -> bool:
        return self._array is None

    def read(self) -> np.ndarray:
        """Return a copy of the payload (secure world only)."""
        require_secure_world(f"reading shielded buffer {self.label!r}")
        self._check_live()
        return self._array.copy()

    def view(self) -> np.ndarray:
        """Return the payload without copying (secure world only)."""
        require_secure_world(f"viewing shielded buffer {self.label!r}")
        self._check_live()
        return self._array

    def write(self, array: np.ndarray) -> None:
        """Replace the payload in-place (secure world only, same shape)."""
        require_secure_world(f"writing shielded buffer {self.label!r}")
        self._check_live()
        array = np.asarray(array)
        if array.shape != self.shape:
            raise ValueError(
                f"shape mismatch writing {self.label!r}: "
                f"{array.shape} vs {self.shape}"
            )
        self._array = array.copy()

    def release(self) -> None:
        """Free the secure memory backing this buffer."""
        if self._array is not None:
            self._pool.release(self._handle)
            self._array = None

    def _check_live(self) -> None:
        if self._array is None:
            raise SecureWorldViolation(
                f"shielded buffer {self.label!r} was already released"
            )

    # Deliberately leak-proof conveniences -----------------------------
    def __repr__(self) -> str:
        world = current_world()
        return (
            f"ShieldedBuffer(label={self.label!r}, shape={self.shape}, "
            f"nbytes={self.nbytes}, world={world.value})"
        )

    def __array__(self, dtype=None):
        # numpy coercion from the normal world is an exfiltration attempt.
        if current_world() is not World.SECURE:
            raise SecureWorldViolation(
                f"cannot coerce shielded buffer {self.label!r} to an array "
                "from the normal world"
            )
        self._check_live()
        return self._array.astype(dtype) if dtype else self._array.copy()
