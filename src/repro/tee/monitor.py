"""The secure monitor (SMC) — the only gate between the two worlds.

Normal-world code calls :meth:`SecureMonitor.smc` naming a trusted
application and a command; the monitor switches the calling thread into the
secure world, dispatches to the TA, switches back, and accounts for the
world-switch cost.  The per-call counters feed the cost model's
world-switch term and give tests a way to assert that protected
computation really crossed the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from .trusted_app import TrustedApplication
from .world import TEEError, secure_world

__all__ = ["SecureMonitor", "SMCStats", "Session"]


@dataclass
class SMCStats:
    """Counters maintained by the monitor."""

    calls: int = 0
    per_ta: Dict[str, int] = field(default_factory=dict)
    sessions_opened: int = 0
    sessions_closed: int = 0

    def record(self, ta_name: str) -> None:
        self.calls += 1
        self.per_ta[ta_name] = self.per_ta.get(ta_name, 0) + 1


@dataclass
class Session:
    """A GlobalPlatform-style client session with one TA."""

    session_id: int
    ta_uuid: str
    open: bool = True
    invocations: int = 0


class SecureMonitor:
    """Dispatches secure monitor calls (SMCs) to registered TAs.

    Besides raw ``smc`` dispatch, the monitor implements the
    GlobalPlatform-style session protocol OP-TEE clients use:
    :meth:`open_session` / :meth:`invoke` / :meth:`close_session`.
    """

    def __init__(self) -> None:
        self._tas: Dict[str, TrustedApplication] = {}
        self._sessions: Dict[int, Session] = {}
        self._next_session = 1
        self.stats = SMCStats()

    def install(self, ta: TrustedApplication) -> None:
        """Install a trusted application into the secure world."""
        if ta.uuid in self._tas:
            raise TEEError(f"TA with uuid {ta.uuid} already installed")
        self._tas[ta.uuid] = ta

    def uninstall(self, uuid: str) -> None:
        if uuid not in self._tas:
            raise KeyError(f"no TA with uuid {uuid}")
        del self._tas[uuid]

    def installed(self) -> tuple:
        """UUIDs of installed TAs."""
        return tuple(sorted(self._tas))

    def ta(self, uuid: str) -> TrustedApplication:
        try:
            return self._tas[uuid]
        except KeyError:
            raise KeyError(f"no TA with uuid {uuid}") from None

    def smc(self, uuid: str, command: str, **params: Any) -> Any:
        """World-switch into the secure world and invoke a TA command."""
        ta = self.ta(uuid)
        self.stats.record(ta.name)
        with secure_world():
            return ta.invoke(command, **params)

    # -- GlobalPlatform-style sessions ------------------------------------
    def open_session(self, uuid: str) -> int:
        """Open a client session with a TA; returns the session id."""
        self.ta(uuid)  # validates the UUID
        session = Session(self._next_session, uuid)
        self._sessions[session.session_id] = session
        self._next_session += 1
        self.stats.sessions_opened += 1
        return session.session_id

    def invoke(self, session_id: int, command: str, **params: Any) -> Any:
        """Invoke a TA command within an open session."""
        session = self._sessions.get(session_id)
        if session is None or not session.open:
            raise TEEError(f"session {session_id} is not open")
        session.invocations += 1
        return self.smc(session.ta_uuid, command, **params)

    def close_session(self, session_id: int) -> None:
        """Close a session; further invokes through it fail."""
        session = self._sessions.get(session_id)
        if session is None or not session.open:
            raise TEEError(f"session {session_id} is not open")
        session.open = False
        self.stats.sessions_closed += 1

    def session(self, session_id: int) -> Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"no session {session_id}") from None
