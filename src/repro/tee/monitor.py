"""The secure monitor (SMC) — the only gate between the two worlds.

Normal-world code calls :meth:`SecureMonitor.smc` naming a trusted
application and a command; the monitor switches the calling thread into the
secure world, dispatches to the TA, switches back, and accounts for the
world-switch cost.  The per-call counters feed the cost model's
world-switch term and give tests a way to assert that protected
computation really crossed the boundary.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict

from ..obs import get_clock, get_registry, get_tracer
from .trusted_app import TrustedApplication
from .world import TEEError, secure_world

__all__ = ["SecureMonitor", "SMCStats", "Session"]


@dataclass
class SMCStats:
    """Counters maintained by the monitor.

    All mutation is lock-guarded: under the parallel round executor many
    client threads share one monitor, and ``calls += 1`` /
    ``per_ta[name] += 1`` are read-modify-write races without it — the
    invariant tests assert *exact* call counts, so lost increments are
    test failures, not noise.
    """

    calls: int = 0
    per_ta: Dict[str, int] = field(default_factory=dict)
    sessions_opened: int = 0
    sessions_closed: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, ta_name: str) -> None:
        with self._lock:
            self.calls += 1
            self.per_ta[ta_name] = self.per_ta.get(ta_name, 0) + 1

    def record_session(self, opened: bool) -> None:
        with self._lock:
            if opened:
                self.sessions_opened += 1
            else:
                self.sessions_closed += 1


@dataclass
class Session:
    """A GlobalPlatform-style client session with one TA."""

    session_id: int
    ta_uuid: str
    open: bool = True
    invocations: int = 0


class SecureMonitor:
    """Dispatches secure monitor calls (SMCs) to registered TAs.

    Besides raw ``smc`` dispatch, the monitor implements the
    GlobalPlatform-style session protocol OP-TEE clients use:
    :meth:`open_session` / :meth:`invoke` / :meth:`close_session`.
    """

    def __init__(self) -> None:
        self._tas: Dict[str, TrustedApplication] = {}
        self._sessions: Dict[int, Session] = {}
        self._next_session = 1
        self._session_lock = threading.Lock()
        self.stats = SMCStats()

    def install(self, ta: TrustedApplication) -> None:
        """Install a trusted application into the secure world."""
        if ta.uuid in self._tas:
            raise TEEError(f"TA with uuid {ta.uuid} already installed")
        self._tas[ta.uuid] = ta

    def uninstall(self, uuid: str) -> None:
        if uuid not in self._tas:
            raise KeyError(f"no TA with uuid {uuid}")
        del self._tas[uuid]

    def installed(self) -> tuple:
        """UUIDs of installed TAs."""
        return tuple(sorted(self._tas))

    def ta(self, uuid: str) -> TrustedApplication:
        try:
            return self._tas[uuid]
        except KeyError:
            raise KeyError(f"no TA with uuid {uuid}") from None

    def smc(self, uuid: str, command: str, **params: Any) -> Any:
        """World-switch into the secure world and invoke a TA command.

        Every call is observable: it increments ``tee.smc.calls`` (labelled
        by TA and command), records per-TA latency in ``tee.smc.seconds``,
        and opens a ``tee.smc`` span carrying the protected layer indices
        when the command names them — which is how the leakage-invariant
        tests prove protected computation actually crossed the boundary.
        """
        ta = self.ta(uuid)
        self.stats.record(ta.name)
        registry = get_registry()
        clock = get_clock()
        registry.counter(
            "tee.smc.calls", "world switches into the secure world"
        ).inc(ta=ta.name, command=command)
        attributes: Dict[str, Any] = {"ta": ta.name, "command": command}
        if "indices" in params:
            attributes["indices"] = [int(i) for i in params["indices"]]
        started = clock.now()
        try:
            with get_tracer().span("tee.smc", **attributes):
                with secure_world():
                    return ta.invoke(command, **params)
        finally:
            registry.histogram(
                "tee.smc.seconds", "secure-world residency per SMC"
            ).observe(clock.now() - started, ta=ta.name)

    # -- GlobalPlatform-style sessions ------------------------------------
    def open_session(self, uuid: str) -> int:
        """Open a client session with a TA; returns the session id."""
        self.ta(uuid)  # validates the UUID
        with self._session_lock:
            session = Session(self._next_session, uuid)
            self._sessions[session.session_id] = session
            self._next_session += 1
        self.stats.record_session(opened=True)
        get_registry().counter(
            "tee.sessions", "GlobalPlatform session lifecycle events"
        ).inc(event="opened")
        return session.session_id

    def invoke(self, session_id: int, command: str, **params: Any) -> Any:
        """Invoke a TA command within an open session."""
        session = self._sessions.get(session_id)
        if session is None or not session.open:
            raise TEEError(f"session {session_id} is not open")
        session.invocations += 1
        return self.smc(session.ta_uuid, command, **params)

    def close_session(self, session_id: int) -> None:
        """Close a session; further invokes through it fail."""
        session = self._sessions.get(session_id)
        if session is None or not session.open:
            raise TEEError(f"session {session_id} is not open")
        session.open = False
        self.stats.record_session(opened=False)
        get_registry().counter(
            "tee.sessions", "GlobalPlatform session lifecycle events"
        ).inc(event="closed")

    def session(self, session_id: int) -> Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"no session {session_id}") from None
