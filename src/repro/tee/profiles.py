"""Device profiles for the cost model.

The constants below are calibrated against the paper's own Table 6
measurements on a Raspberry Pi 3B+ (Cortex-A53 @1.4 GHz, OP-TEE):

* ``ree_seconds_per_flop`` fixes the baseline — one LeNet-5 FL cycle
  (batch 32, forward + backward ≈ 3x forward FLOPs) takes 2.191 s of user
  time outside the enclave.
* ``tee_seconds_per_flop`` reproduces the kernel-time increase when a layer
  moves into the enclave (≈1.25x REE cost, from the L2 row).
* ``alloc_coefficient`` / ``alloc_exponent`` fit the enclave memory
  allocation time as ``a * params^b`` through the paper's three data points
  (900 → 0.09 s, 3 600 → 0.34 s, 76 800 → 4.68 s); allocation is additive
  across protected layers (L2+L5 = 5.02 s in the paper, exactly the sum).
* ``secure_memory_bytes`` is 4 MiB, mid-range of the paper's "3–5 MB".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceProfile", "RASPBERRY_PI_3B"]


@dataclass(frozen=True)
class DeviceProfile:
    """Calibration constants of a TrustZone-capable device."""

    name: str
    ree_seconds_per_flop: float
    tee_seconds_per_flop: float
    kernel_base_seconds: float
    world_switch_seconds: float
    alloc_coefficient: float
    alloc_exponent: float
    secure_memory_bytes: int
    backward_flops_factor: float = 2.0  # backward ≈ 2x forward FLOPs

    def training_flops_factor(self) -> float:
        """Forward + backward cost multiplier on forward FLOPs."""
        return 1.0 + self.backward_flops_factor

    def alloc_seconds(self, weight_params: int) -> float:
        """Enclave allocation time for a layer with ``weight_params`` weights."""
        if weight_params <= 0:
            return 0.0
        return self.alloc_coefficient * float(weight_params) ** self.alloc_exponent


# One LeNet-5 cycle (batch 32): forward FLOPs/sample = 1,996,800 (see
# repro.nn.zoo.lenet5 layer shapes), so total = 1.9968e6 * 3 * 32 = 191.7e6
# FLOPs.  2.191 s / 191.7e6 = 11.43 ns/FLOP in the REE.
RASPBERRY_PI_3B = DeviceProfile(
    name="raspberry-pi-3b+",
    ree_seconds_per_flop=11.43e-9,
    tee_seconds_per_flop=14.3e-9,
    kernel_base_seconds=0.021,
    world_switch_seconds=0.02,
    alloc_coefficient=2.15e-4,
    alloc_exponent=0.888,
    secure_memory_bytes=4 * 1024 * 1024,
)
