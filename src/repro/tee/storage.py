"""OP-TEE-style secure storage.

Implements the key hierarchy of the paper's §7.3:

* **SSK** — per-device Secure Storage Key (fused at manufacture; here, owned
  by the :class:`SecureStorage` instance).
* **TSK** — Trusted-Application Storage Key, derived from the SSK and the
  TA's UUID, so two TAs on the same device cannot read each other's objects.
* **FEK** — per-object random File Encryption Key; the object payload is
  encrypted under the FEK and the FEK is wrapped under the TSK.

Objects are confidential (encrypted), authenticated (MAC-checked on read,
raising :class:`~repro.tee.world.IntegrityError` on any bit flip), updated
atomically (a failed write leaves the previous version intact), and
**rollback-protected**: every write increments a monotonic counter held in
trusted storage (modelling RPMB's replay-protected counters), and the
counter value travels inside the authenticated ciphertext — so an attacker
who replays an *older, genuinely-sealed* blob is caught
(:class:`RollbackError`). Two backends mirror OP-TEE's *REE FS* (files in
the untrusted filesystem) and *RPMB* (an in-memory region).
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, Optional

from . import crypto
from .world import IntegrityError, TEEError

__all__ = [
    "SecureStorage",
    "InMemoryBackend",
    "ReeFsBackend",
    "StorageBackend",
    "FaultInjectedBackend",
    "RollbackError",
    "BackendCrash",
]


class RollbackError(TEEError):
    """A stale (replayed) version of a secure object was served."""


class BackendCrash(TEEError):
    """Injected storage-medium failure (power loss mid-write)."""


class StorageBackend:
    """Minimal key/value blob store the secure storage writes through."""

    def put(self, key: str, blob: bytes) -> None:
        raise NotImplementedError

    def get(self, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def keys(self) -> tuple:
        raise NotImplementedError


class InMemoryBackend(StorageBackend):
    """RPMB-like backend: blobs live in memory."""

    def __init__(self) -> None:
        self._blobs: Dict[str, bytes] = {}

    def put(self, key: str, blob: bytes) -> None:
        self._blobs[key] = bytes(blob)

    def get(self, key: str) -> Optional[bytes]:
        return self._blobs.get(key)

    def delete(self, key: str) -> None:
        self._blobs.pop(key, None)

    def keys(self) -> tuple:
        return tuple(sorted(self._blobs))


class ReeFsBackend(StorageBackend):
    """REE-FS backend: encrypted blobs stored as files in the normal world.

    Writes are atomic: the blob is written to a temporary file in the same
    directory and ``os.replace``d into place.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        safe = key.replace("/", "_").replace("..", "_")
        return os.path.join(self.directory, safe + ".sec")

    def put(self, key: str, blob: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.directory)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, self._path(key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def get(self, key: str) -> Optional[bytes]:
        path = self._path(key)
        if not os.path.exists(path):
            return None
        with open(path, "rb") as fh:
            return fh.read()

    def delete(self, key: str) -> None:
        path = self._path(key)
        if os.path.exists(path):
            os.unlink(path)

    def keys(self) -> tuple:
        names = [n[:-4] for n in os.listdir(self.directory) if n.endswith(".sec")]
        return tuple(sorted(names))


class FaultInjectedBackend(StorageBackend):
    """Wraps a backend and crashes chosen ``put`` calls, for testing.

    Models the two ways a physical write can die:

    * ``mode="before"`` — power lost before anything hit the medium: the
      previous blob (if any) is untouched;
    * ``mode="torn"`` — the write was interrupted partway: a truncated
      blob lands, which integrity verification must catch on read.

    Either way :class:`BackendCrash` propagates to the caller, so
    :meth:`SecureStorage.put` never reaches its counter-increment commit
    point — exactly the crash-atomicity contract the tests pin down.

    Parameters
    ----------
    inner:
        The real backend to wrap (default: a fresh in-memory one).
    fail_on_put:
        Zero-based indices of ``put`` calls (counted across all keys) that
        crash.
    mode:
        ``"before"`` or ``"torn"`` (see above).
    """

    def __init__(
        self,
        inner: Optional[StorageBackend] = None,
        fail_on_put: Optional[set] = None,
        mode: str = "before",
    ) -> None:
        if mode not in ("before", "torn"):
            raise ValueError(f"unknown crash mode {mode!r}")
        self.inner = inner or InMemoryBackend()
        self.fail_on_put = set(fail_on_put or ())
        self.mode = mode
        self.puts = 0

    def put(self, key: str, blob: bytes) -> None:
        index = self.puts
        self.puts += 1
        if index in self.fail_on_put:
            if self.mode == "torn":
                self.inner.put(key, blob[: max(1, len(blob) // 2)])
            raise BackendCrash(f"injected crash on put #{index} ({self.mode})")
        self.inner.put(key, blob)

    def get(self, key: str) -> Optional[bytes]:
        return self.inner.get(key)

    def delete(self, key: str) -> None:
        self.inner.delete(key)

    def keys(self) -> tuple:
        return self.inner.keys()


class SecureStorage:
    """Per-device secure storage with the SSK → TSK → FEK hierarchy.

    Parameters
    ----------
    backend:
        Where sealed blobs land (default: in-memory, RPMB-like).
    ssk:
        Per-device Secure Storage Key; random when omitted.
    counters_path:
        When given, the monotonic counters are mirrored to this file (in
        trusted storage) and reloaded on construction — the persistence a
        real device gets from RPMB across reboots.  Without it a fresh
        instance trusts nothing written by a previous one.
    """

    _MAGIC = b"GSEC2"
    _VERSION_BYTES = 8

    def __init__(
        self,
        backend: Optional[StorageBackend] = None,
        ssk: Optional[bytes] = None,
        counters_path: Optional[str] = None,
    ) -> None:
        self.backend = backend or InMemoryBackend()
        self._ssk = ssk or crypto.random_key()
        # Monotonic write counters per object — held in trusted storage
        # (the role RPMB's replay-protected counters play on real devices).
        self._counters: Dict[str, int] = {}
        self._counters_path = counters_path
        if counters_path is not None and os.path.exists(counters_path):
            import json

            with open(counters_path) as handle:
                self._counters = {k: int(v) for k, v in json.load(handle).items()}

    def _persist_counters(self) -> None:
        if self._counters_path is None:
            return
        import json

        directory = os.path.dirname(self._counters_path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory)
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self._counters, handle)
            os.replace(tmp, self._counters_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _tsk(self, ta_uuid: str) -> bytes:
        return crypto.derive_key(self._ssk, b"tsk", ta_uuid.encode())

    def put(self, ta_uuid: str, name: str, payload: bytes) -> None:
        """Store ``payload`` for TA ``ta_uuid`` under object ``name``."""
        key = self._key(ta_uuid, name)
        version = self._counters.get(key, 0) + 1
        fek = crypto.random_key()
        versioned = version.to_bytes(self._VERSION_BYTES, "big") + payload
        sealed_payload = crypto.encrypt(fek, versioned).to_bytes()
        wrapped_fek = crypto.encrypt(self._tsk(ta_uuid), fek).to_bytes()
        blob = (
            self._MAGIC
            + len(wrapped_fek).to_bytes(4, "big")
            + wrapped_fek
            + sealed_payload
        )
        self.backend.put(key, blob)
        self._counters[key] = version
        self._persist_counters()

    def get(self, ta_uuid: str, name: str) -> bytes:
        """Fetch and verify an object; raises on absence, tampering or replay."""
        key = self._key(ta_uuid, name)
        blob = self.backend.get(key)
        if blob is None:
            raise KeyError(f"no secure object {name!r} for TA {ta_uuid}")
        try:
            if blob[: len(self._MAGIC)] != self._MAGIC:
                raise crypto.CryptoError("bad magic")
            offset = len(self._MAGIC)
            fek_len = int.from_bytes(blob[offset : offset + 4], "big")
            offset += 4
            wrapped_fek = crypto.SealedBlob.from_bytes(blob[offset : offset + fek_len])
            sealed_payload = crypto.SealedBlob.from_bytes(blob[offset + fek_len :])
            fek = crypto.decrypt(self._tsk(ta_uuid), wrapped_fek)
            versioned = crypto.decrypt(fek, sealed_payload)
        except crypto.CryptoError as exc:
            raise IntegrityError(
                f"secure object {name!r} for TA {ta_uuid} failed verification: {exc}"
            ) from exc
        version = int.from_bytes(versioned[: self._VERSION_BYTES], "big")
        expected = self._counters.get(key, 0)
        if version != expected:
            raise RollbackError(
                f"secure object {name!r} for TA {ta_uuid} has version "
                f"{version}, trusted counter says {expected} (replay attack?)"
            )
        return versioned[self._VERSION_BYTES :]

    def delete(self, ta_uuid: str, name: str) -> None:
        self.backend.delete(self._key(ta_uuid, name))
        self._counters.pop(self._key(ta_uuid, name), None)
        self._persist_counters()

    def objects(self) -> tuple:
        """All stored object keys (as visible to the untrusted backend)."""
        return self.backend.keys()

    @staticmethod
    def _key(ta_uuid: str, name: str) -> str:
        return f"{ta_uuid}:{name}"
