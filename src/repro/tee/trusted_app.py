"""Trusted applications (TAs).

A TA is the unit of code that runs in the secure world.  Each TA has a UUID
(which parameterises its storage keys) and a *measurement* — a digest of its
code/configuration — which remote attestation reports to the FL server.
"""

from __future__ import annotations

import hashlib
import json
import uuid as uuid_module
from typing import Any, Callable, Dict

from .world import require_secure_world

__all__ = ["TrustedApplication"]


class TrustedApplication:
    """Base class for secure-world services.

    Subclasses register command handlers with :meth:`register`; the secure
    monitor dispatches :meth:`invoke` calls to them.  ``invoke`` refuses to
    run outside the secure world, so a TA can only ever be reached through
    an SMC.

    Parameters
    ----------
    name:
        Human-readable TA name.
    uuid:
        Stable identifier; derived from the name when omitted.
    version:
        Included in the measurement, so upgrading a TA changes what it
        attests as.
    """

    def __init__(self, name: str, uuid: str | None = None, version: str = "1.0") -> None:
        self.name = name
        self.uuid = uuid or str(uuid_module.uuid5(uuid_module.NAMESPACE_DNS, name))
        self.version = version
        self._commands: Dict[str, Callable[..., Any]] = {}

    def register(self, command: str, handler: Callable[..., Any]) -> None:
        """Expose ``handler`` under ``command`` to SMC callers."""
        self._commands[command] = handler

    @property
    def commands(self) -> tuple:
        return tuple(sorted(self._commands))

    def invoke(self, command: str, **params: Any) -> Any:
        """Run a registered command (secure world only)."""
        require_secure_world(f"invoking TA {self.name!r}")
        handler = self._commands.get(command)
        if handler is None:
            raise KeyError(
                f"TA {self.name!r} has no command {command!r}; "
                f"available: {self.commands}"
            )
        return handler(**params)

    def measurement(self) -> str:
        """Attestation measurement: digest of identity + command surface."""
        blob = json.dumps(
            {
                "name": self.name,
                "uuid": self.uuid,
                "version": self.version,
                "commands": self.commands,
            },
            sort_keys=True,
        ).encode()
        return hashlib.sha256(blob).hexdigest()
