"""Execution worlds and the security exceptions of the TrustZone simulator.

ARM TrustZone splits execution into a Rich Execution Environment (REE — the
"normal world") and a Trusted Execution Environment (TEE — the "secure
world").  The simulator models that split as an ambient *current world*
(a context variable): code running while the secure world is active may read
shielded buffers and invoke TEE-kernel services; normal-world code that
touches protected state gets a :class:`SecureWorldViolation`, which is
exactly the guarantee GradSec builds on.
"""

from __future__ import annotations

import enum
import threading
from contextlib import contextmanager

__all__ = [
    "World",
    "current_world",
    "secure_world",
    "require_secure_world",
    "TEEError",
    "SecureWorldViolation",
    "SecureMemoryExhausted",
    "IntegrityError",
    "AttestationError",
]


class TEEError(Exception):
    """Base class for every TrustZone-simulator error."""


class SecureWorldViolation(TEEError):
    """Normal-world code attempted to access secure-world state."""


class SecureMemoryExhausted(TEEError):
    """The secure memory pool cannot satisfy an allocation.

    TrustZone secure memory is scarce (3–5 MB per the paper, §3.3); running
    out is the constraint that motivates protecting only *some* layers.
    """


class IntegrityError(TEEError):
    """Secure-storage object failed its authenticity check."""


class AttestationError(TEEError):
    """Remote attestation failed (bad measurement or bad signature)."""


class World(enum.Enum):
    """The two TrustZone execution worlds."""

    NORMAL = "normal"
    SECURE = "secure"


_state = threading.local()


def current_world() -> World:
    """World the calling thread is currently executing in."""
    return getattr(_state, "world", World.NORMAL)


@contextmanager
def secure_world():
    """Enter the secure world for the duration of the context.

    Only the secure monitor (:mod:`repro.tee.monitor`) should use this
    directly; everything else reaches the secure world through an SMC call.
    """
    previous = current_world()
    _state.world = World.SECURE
    try:
        yield
    finally:
        _state.world = previous


def require_secure_world(operation: str = "operation") -> None:
    """Raise :class:`SecureWorldViolation` unless running in the secure world."""
    if current_world() is not World.SECURE:
        raise SecureWorldViolation(
            f"{operation} is only permitted in the secure world "
            f"(current world: {current_world().value})"
        )
