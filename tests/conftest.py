"""Shared fixtures for the test suite."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest

from repro.data import synthetic_cifar
from repro.nn import lenet5, mlp, one_hot

_REPO_ROOT = Path(__file__).resolve().parents[1]


def _subprocess_env():
    """Environment for child interpreters: the repo's src on PYTHONPATH."""
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
    return env


@pytest.fixture
def spawn_python():
    """Run ``python <args...>`` as a child process and return the result.

    The one blessed way suites shell out to a fresh interpreter (CLI
    byte-compare runs, benchmark scripts): repo ``src`` is always on the
    child's PYTHONPATH and output is captured as text.
    """

    def run(*args, timeout=600, check=True, cwd=None):
        result = subprocess.run(
            [sys.executable, *map(str, args)],
            capture_output=True,
            text=True,
            timeout=timeout,
            env=_subprocess_env(),
            cwd=cwd or str(_REPO_ROOT),
        )
        if check:
            assert result.returncode == 0, (
                f"child python {args} failed ({result.returncode}):\n"
                f"{result.stdout}\n{result.stderr}"
            )
        return result

    return run


@pytest.fixture
def spawn_repro(spawn_python):
    """Run a ``repro`` CLI subcommand in a child interpreter."""

    def run(*args, timeout=600, check=True):
        return spawn_python("-m", "repro", *args, timeout=timeout, check=check)

    return run


@pytest.fixture
def spawn_repro_background():
    """Start ``repro <args...>`` detached, for kill -9 / crash tests.

    Yields a factory returning the live ``subprocess.Popen``; anything
    still running at teardown is killed so a failing test cannot leak
    children.
    """
    procs = []

    def start(*args):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *map(str, args)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=_subprocess_env(),
            cwd=str(_REPO_ROOT),
        )
        procs.append(proc)
        return proc

    yield start
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def small_model():
    """A tiny 3-layer MLP for fast structural tests."""
    return mlp(num_classes=4, input_shape=(6,), hidden=(8, 5), seed=0)


@pytest.fixture
def tiny_lenet():
    """A reduced LeNet-5: same 5-layer structure, fewer filters."""
    return lenet5(num_classes=5, seed=0, scale=0.5)


@pytest.fixture
def lenet():
    """The paper's LeNet-5 (Table 4 shapes)."""
    return lenet5(num_classes=100, seed=0)


@pytest.fixture
def image_batch(rng):
    x = rng.normal(0.5, 0.2, size=(8, 3, 32, 32))
    y = one_hot(rng.integers(0, 5, 8), 5)
    return x, y


@pytest.fixture
def small_dataset():
    return synthetic_cifar(num_samples=64, num_classes=5, seed=3)


# --- simulator-report helpers (shared by the CLI, byzantine and async
# simulator suites, which all compare serialised reports byte-for-byte) ---


@pytest.fixture
def report_bytes():
    """Canonical serialisation of a simulate report, for byte comparisons."""

    def encode(report):
        return json.dumps(report, sort_keys=True).encode()

    return encode


@pytest.fixture
def simulate_cli(tmp_path):
    """Run ``repro simulate`` over the suite's base fleet, return the bytes.

    ``extra`` flags are appended after the base flags, so repeating a flag
    (e.g. ``--seed``) overrides the base value — argparse keeps the last.
    """
    from repro.cli import main

    def run(name, *extra):
        out = tmp_path / name
        argv = [
            "simulate",
            "--clients", "80",
            "--rounds", "3",
            "--seed", "7",
            "--dropout", "0.2",
            "--straggler", "0.1",
            "--out", str(out),
            *extra,
        ]
        assert main(argv) == 0
        return out.read_bytes()

    return run


@pytest.fixture
def sim_factory():
    """Build an ``FLSimulator`` under a fresh ``VirtualClock`` registry.

    Yields the simulator inside a context manager so tests that kill and
    resume a coordinator can open two independent metric registries.  The
    ``FaultPlan`` is derived from the config's byzantine settings, exactly
    as the CLI wires it; pass ``rates=FaultRates(...)`` for infrastructure
    faults.
    """
    from repro import obs
    from repro.obs import VirtualClock
    from repro.sim import FLSimulator, FaultPlan, FaultRates, SimConfig

    @contextmanager
    def build(storage=None, rates=None, **settings):
        config = SimConfig(**settings)
        plan = FaultPlan(
            rates or FaultRates(),
            seed=config.seed,
            byzantine=config.byzantine,
            attack=config.attack,
            attack_strength=config.attack_strength,
        )
        with obs.fresh(clock=VirtualClock()) as ctx:
            yield FLSimulator(
                config, fault_plan=plan, storage=storage, clock=ctx.clock
            )

    return build


@pytest.fixture
def sim_runner(sim_factory):
    """Run one in-process simulation to completion and return its report."""

    def run(storage=None, rates=None, **settings):
        with sim_factory(storage=storage, rates=rates, **settings) as sim:
            return sim.run()

    return run
