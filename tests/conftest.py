"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import synthetic_cifar
from repro.nn import lenet5, mlp, one_hot


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def small_model():
    """A tiny 3-layer MLP for fast structural tests."""
    return mlp(num_classes=4, input_shape=(6,), hidden=(8, 5), seed=0)


@pytest.fixture
def tiny_lenet():
    """A reduced LeNet-5: same 5-layer structure, fewer filters."""
    return lenet5(num_classes=5, seed=0, scale=0.5)


@pytest.fixture
def lenet():
    """The paper's LeNet-5 (Table 4 shapes)."""
    return lenet5(num_classes=100, seed=0)


@pytest.fixture
def image_batch(rng):
    x = rng.normal(0.5, 0.2, size=(8, 3, 32, 32))
    y = one_hot(rng.integers(0, 5, 8), 5)
    return x, y


@pytest.fixture
def small_dataset():
    return synthetic_cifar(num_samples=64, num_classes=5, seed=3)
