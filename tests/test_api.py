"""Tests for the ``repro.api`` facade (and that the README quickstart runs)."""

import re
from pathlib import Path

import numpy as np
import pytest

import repro
import repro.api as api

README = Path(__file__).resolve().parent.parent / "README.md"


class TestSurface:
    def test_curated_all(self):
        assert set(api.__all__) == {
            "build_server",
            "simulate",
            "serve",
            "run_experiment",
            "attack_suite",
            "ServerConfig",
            "RoundConfig",
            "ShardingConfig",
            "BufferConfig",
            "AdmissionConfig",
            "AdmissionController",
            "ReputationConfig",
            "ReputationTracker",
            "RULES",
            "ProtectionPolicy",
            "NoProtection",
            "StaticPolicy",
            "DarknetzPolicy",
            "DynamicPolicy",
            "PeltaPolicy",
            "LayerRef",
            "BlockSelector",
            "ModelLayout",
            "policy_from_spec",
        }
        for name in api.__all__:
            assert hasattr(api, name)

    def test_registered_on_package(self):
        assert "api" in repro.__all__
        assert repro.api is api


class TestBuildServer:
    def test_defaults_are_deterministic(self):
        a = api.build_server(config=api.ServerConfig(seed=3))
        b = api.build_server(config=api.ServerConfig(seed=3))
        for wa, wb in zip(a.model.get_weights(), b.model.get_weights()):
            for key in wa:
                np.testing.assert_array_equal(wa[key], wb[key])

    def test_config_threads_through(self):
        server = api.build_server(
            config=api.ServerConfig(
                sharding=api.ShardingConfig(num_shards=8)
            )
        )
        assert server.config.sharding.num_shards == 8

    def test_no_deprecation_warning(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.build_server()


class TestSimulate:
    def test_deterministic(self):
        a = api.simulate(clients=40, rounds=2, seed=9, dropout=0.2)
        b = api.simulate(clients=40, rounds=2, seed=9, dropout=0.2)
        assert a == b

    def test_sharded_matches_flat(self):
        flat = api.simulate(clients=60, rounds=2, seed=4, dropout=0.1)
        sharded = api.simulate(
            clients=60, rounds=2, seed=4, dropout=0.1, shards=8
        )
        assert sharded["weights_sha256"] == flat["weights_sha256"]
        assert sharded["totals"]["shard_bytes"] > 0
        assert flat["totals"]["shard_bytes"] == 0

    def test_metrics_opt_in(self):
        without = api.simulate(clients=20, rounds=1, seed=1)
        with_metrics = api.simulate(
            clients=20, rounds=1, seed=1, include_metrics=True
        )
        assert "metrics" not in without
        assert "fl.rounds" not in with_metrics["metrics"]["counters"]  # sim-level
        assert "sim.rounds" in with_metrics["metrics"]["counters"]


class TestRunExperiment:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            api.run_experiment("fig99")

    def test_table6_payload(self, capsys):
        payload = api.run_experiment("table6")
        assert payload["command"] == "table6"
        labels = [row["label"] for row in payload["rows"]]
        assert labels[0] == "baseline"
        assert all("tee_memory_mib" in row for row in payload["rows"])
        assert "Table 6" in capsys.readouterr().out


class TestReadmeQuickstart:
    def quickstart_blocks(self):
        text = README.read_text()
        section = text.split("## Quickstart", 1)[1].split("\n## ", 1)[0]
        return re.findall(r"```python\n(.*?)```", section, flags=re.DOTALL)

    def test_quickstart_blocks_run_verbatim(self, capsys):
        blocks = self.quickstart_blocks()
        assert len(blocks) >= 2
        for block in blocks:
            exec(compile(block, str(README), "exec"), {})
