"""Tests for the property inference attack (DPIA)."""

import numpy as np
import pytest

from repro.attacks import PropertyInferenceAttack
from repro.bench.experiments import simulate_fl_for_dpia
from repro.core import DynamicPolicy, NoProtection, StaticPolicy
from repro.data import synthetic_lfw
from repro.nn import lenet5


@pytest.fixture(scope="module")
def fl_run():
    """A short unprotected victim run shared across tests."""
    return simulate_fl_for_dpia(NoProtection(5), cycles=24, lr=0.02, seed=0)


@pytest.fixture(scope="module")
def auxiliary():
    return synthetic_lfw(num_samples=200, num_classes=2, seed=1, sample_seed=999)


def make_attack(seed=0, bps=1):
    return PropertyInferenceAttack(
        lenet5(num_classes=2, seed=9, activation="sigmoid"),
        batch_size=16,
        batches_per_snapshot=bps,
        seed=seed,
    )


class TestSimulation:
    def test_snapshot_count(self, fl_run):
        snapshots, protected_per_cycle, truth = fl_run
        assert len(snapshots) == 25
        assert len(protected_per_cycle) == 25
        assert len(truth) == 24

    def test_truth_is_balanced(self, fl_run):
        _, _, truth = fl_run
        assert sum(truth) == 12

    def test_protected_sets_empty_without_policy(self, fl_run):
        _, protected_per_cycle, _ = fl_run
        assert all(p == frozenset() for p in protected_per_cycle)

    def test_dynamic_policy_recorded_per_cycle(self):
        policy = DynamicPolicy(5, 2, [0.25] * 4, seed=2)
        _, protected_per_cycle, _ = simulate_fl_for_dpia(policy, cycles=8, seed=0)
        assert all(len(p) == 2 for p in protected_per_cycle)
        assert len({tuple(sorted(p)) for p in protected_per_cycle}) > 1


class TestAttackMechanics:
    def test_training_set_shape(self, fl_run, auxiliary):
        snapshots, ppc, _ = fl_run
        attack = make_attack(bps=2)
        train = attack.build_training_set(snapshots, auxiliary, ppc)
        # 25 snapshots x 2 batches x 2 labels.
        assert train.features.shape[0] == 100
        assert set(np.unique(train.labels)) == {0, 1}

    def test_test_features_one_row_per_transition(self, fl_run):
        snapshots, ppc, _ = fl_run
        attack = make_attack()
        assert attack.test_features(snapshots, ppc, lr=0.02).shape[0] == 24

    def test_protected_columns_are_nan(self, auxiliary):
        policy = StaticPolicy(5, [3])
        snapshots, ppc, _ = simulate_fl_for_dpia(policy, cycles=4, seed=0)
        attack = make_attack()
        train = attack.build_training_set(snapshots, auxiliary, ppc)
        assert np.isnan(train.features).any()

    def test_unprotected_attack_beats_chance(self, fl_run, auxiliary):
        snapshots, ppc, truth = fl_run
        attack = make_attack(bps=2)
        result = attack.run(snapshots, auxiliary, ppc, truth, lr=0.02)
        assert result.score > 0.55

    def test_truth_length_validated(self, fl_run, auxiliary):
        snapshots, ppc, truth = fl_run
        attack = make_attack()
        with pytest.raises(ValueError, match="transitions"):
            attack.run(snapshots, auxiliary, ppc, truth[:-2], lr=0.02)

    def test_aux_without_properties_rejected(self, fl_run):
        from repro.data import synthetic_cifar

        snapshots, ppc, truth = fl_run
        plain = synthetic_cifar(num_samples=50, num_classes=2, seed=0)
        attack = make_attack()
        with pytest.raises(ValueError, match="property"):
            attack.build_training_set(snapshots, plain, ppc)

    def test_missing_protection_schedule_rejected(self, fl_run, auxiliary):
        snapshots, ppc, _ = fl_run
        attack = make_attack()
        with pytest.raises(ValueError, match="every snapshot"):
            attack.build_training_set(snapshots, auxiliary, ppc[:2])
