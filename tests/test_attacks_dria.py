"""Tests for the data-reconstruction attack (DRIA)."""

import numpy as np
import pytest

from repro.attacks import DataReconstructionAttack
from repro.data import image_loss, synthetic_cifar
from repro.nn import lenet5, mlp, one_hot


@pytest.fixture(scope="module")
def setup():
    # Full-width LeNet-5: reconstruction quality needs the paper's 12
    # filters (a half-width model under-determines the input).
    model = lenet5(num_classes=5, seed=1)
    data = synthetic_cifar(num_samples=2, num_classes=5, seed=0)
    return model, data.x[:1], data.one_hot_labels()[:1]


class TestObservedGradients:
    def test_protected_layers_hidden(self, setup):
        model, x, y = setup
        attack = DataReconstructionAttack(model)
        observed = attack.observed_gradients(x, y, protected=(2, 5))
        assert observed[1] is None and observed[4] is None
        assert observed[0] is not None


class TestReconstruction:
    def test_unprotected_reconstruction_approaches_input(self, setup):
        model, x, y = setup
        attack = DataReconstructionAttack(model, iterations=120, seed=0)
        result = attack.run(x, y)
        # Much better than the random initialisation (which is ~18 away).
        assert result.score < 8.0
        assert result.metric == "ImageLoss"

    def test_protecting_early_conv_degrades_attack(self, setup):
        """The paper's Figure 5 takeaway: shield the early conv layers."""
        model, x, y = setup
        attack = DataReconstructionAttack(model, iterations=120, seed=0)
        open_score = attack.run(x, y).score
        shielded_score = attack.run(x, y, protected=(1, 2)).score
        assert shielded_score > 1.5 * open_score

    def test_all_protected_raises(self, setup):
        model, x, y = setup
        attack = DataReconstructionAttack(model, iterations=5)
        with pytest.raises(ValueError, match="every layer"):
            attack.run(x, y, protected=(1, 2, 3, 4, 5))

    def test_adam_variant_reduces_matching_loss(self, setup):
        model, x, y = setup
        attack = DataReconstructionAttack(model, iterations=30, optimizer="adam", lr=0.1)
        result = attack.run(x, y)
        losses = result.detail["report"].matching_losses
        assert losses[-1] < losses[0]

    def test_unknown_optimizer_rejected(self, setup):
        model, _, _ = setup
        with pytest.raises(ValueError, match="optimizer"):
            DataReconstructionAttack(model, optimizer="sgd")

    def test_reconstruction_shape_matches_input(self, setup):
        model, x, y = setup
        result = DataReconstructionAttack(model, iterations=5).run(x, y)
        assert result.detail["report"].reconstruction.shape == x.shape

    def test_deterministic_given_seed(self, setup):
        model, x, y = setup
        a = DataReconstructionAttack(model, iterations=10, seed=3).run(x, y)
        b = DataReconstructionAttack(model, iterations=10, seed=3).run(x, y)
        assert a.score == b.score


class TestOnMLP:
    def test_exact_recovery_on_tiny_linear_model(self):
        """A one-layer softmax model leaks its input almost exactly:
        dW = (softmax - y) x^T, so gradient matching recovers x."""
        model = mlp(num_classes=3, input_shape=(8,), hidden=(), seed=0)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 8))
        y = one_hot(np.array([1]), 3)
        attack = DataReconstructionAttack(model, iterations=200, seed=0)
        result = attack.run(x, y)
        assert result.score < 0.5
