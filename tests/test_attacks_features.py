"""Tests for attack feature extraction and protected-column masking."""

import numpy as np
import pytest

from repro.attacks import (
    features_from_weight_grads,
    gradient_feature_vector,
    layer_block_sizes,
    layer_feature_block,
    mask_protected,
)
from repro.attacks.mia import membership_feature_block
from repro.nn import lenet5, one_hot


@pytest.fixture(scope="module")
def model():
    return lenet5(num_classes=5, seed=0, scale=0.5)


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(0)
    return rng.normal(size=(4, 3, 32, 32)), one_hot(rng.integers(0, 5, 4), 5)


class TestLayerFeatureBlock:
    def test_width_is_2_units_plus_1(self):
        grad = np.random.default_rng(0).normal(size=(6, 10))
        assert layer_feature_block(grad).size == 2 * 6 + 1

    def test_scale_invariant_except_lognorm(self):
        grad = np.random.default_rng(0).normal(size=(4, 8))
        a = layer_feature_block(grad)
        b = layer_feature_block(grad * 100.0)
        np.testing.assert_allclose(a[:-1], b[:-1], atol=1e-10)
        assert b[-1] == pytest.approx(a[-1] + np.log(100.0))

    def test_conv_grad_flattened_per_filter(self):
        grad = np.random.default_rng(0).normal(size=(3, 2, 5, 5))
        assert layer_feature_block(grad).size == 7

    def test_membership_block_is_sorted(self):
        grad = np.random.default_rng(0).normal(size=(8, 4))
        block = membership_feature_block(grad)
        profile = block[:-1]
        assert np.all(np.diff(profile) <= 0)

    def test_membership_block_permutation_invariant(self):
        grad = np.random.default_rng(0).normal(size=(8, 4))
        permuted = grad[np.random.default_rng(1).permutation(8)]
        np.testing.assert_allclose(
            membership_feature_block(grad), membership_feature_block(permuted)
        )


class TestBlockSizes:
    def test_lenet_blocks(self, model):
        sizes = layer_block_sizes(model)
        assert len(sizes) == 5
        # Each layer: 2 * output-units + 1.
        assert sizes[4] == 2 * 5 + 1  # dense head with 5 classes

    def test_parameter_free_layer_is_zero(self):
        from repro.nn import Flatten, Dense, Sequential

        m = Sequential([Flatten(), Dense(3)], input_shape=(2, 4, 4), seed=0)
        assert layer_block_sizes(m) == [0, 2 * 3 + 1]


class TestGradientFeatureVector:
    def test_total_width(self, model, batch):
        x, y = batch
        vec = gradient_feature_vector(model, x, y)
        assert vec.size == sum(layer_block_sizes(model))

    def test_protected_blocks_are_nan(self, model, batch):
        x, y = batch
        vec = gradient_feature_vector(model, x, y, protected=(2,))
        sizes = layer_block_sizes(model)
        start = sizes[0]
        block = vec[start : start + sizes[1]]
        assert np.isnan(block).all()
        assert not np.isnan(vec[:start]).any()

    def test_no_protection_no_nan(self, model, batch):
        x, y = batch
        assert not np.isnan(gradient_feature_vector(model, x, y)).any()

    def test_features_deterministic(self, model, batch):
        x, y = batch
        np.testing.assert_array_equal(
            gradient_feature_vector(model, x, y),
            gradient_feature_vector(model, x, y),
        )


class TestMasking:
    def test_mask_protected_matches_feature_nan_layout(self, model, batch):
        x, y = batch
        direct = gradient_feature_vector(model, x, y, protected=(1, 5))
        masked = mask_protected(
            gradient_feature_vector(model, x, y), model, (1, 5)
        )
        np.testing.assert_array_equal(np.isnan(direct), np.isnan(masked))

    def test_mask_does_not_mutate_input(self, model, batch):
        x, y = batch
        vec = gradient_feature_vector(model, x, y)
        mask_protected(vec, model, (1,))
        assert not np.isnan(vec).any()

    def test_none_grads_treated_as_hidden(self, model):
        grads = [None] * 5
        vec = features_from_weight_grads(model, grads)
        assert np.isnan(vec).all()
