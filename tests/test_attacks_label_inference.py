"""Tests for iDLG label inference from head gradients."""

import numpy as np
import pytest

from repro.attacks import infer_label_from_gradients
from repro.data import synthetic_cifar
from repro.nn import lenet5, mlp, one_hot


class TestLabelInference:
    def test_recovers_label_on_single_samples(self):
        model = lenet5(num_classes=10, seed=1)
        data = synthetic_cifar(num_samples=6, num_classes=10, seed=0)
        onehot = data.one_hot_labels()
        for i in range(6):
            grads = model.gradients_array(data.x[i : i + 1], onehot[i : i + 1])
            assert infer_label_from_gradients(grads[4]["weight"]) == data.y[i]

    def test_works_on_untrained_mlp(self):
        model = mlp(num_classes=5, input_shape=(12,), hidden=(8,), seed=3)
        rng = np.random.default_rng(0)
        x = np.abs(rng.normal(size=(1, 12)))  # positive inputs: clean signs
        for label in range(5):
            grads = model.gradients_array(x, one_hot(np.array([label]), 5))
            assert infer_label_from_gradients(grads[1]["weight"]) == label

    def test_batch_gradients_return_none_or_label(self):
        """Mixed-label batch gradients have no single-row signature."""
        model = lenet5(num_classes=10, seed=1)
        data = synthetic_cifar(num_samples=16, num_classes=10, seed=0)
        grads = model.gradients_array(data.x, data.one_hot_labels())
        result = infer_label_from_gradients(grads[4]["weight"])
        assert result is None or isinstance(result, int)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            infer_label_from_gradients(np.zeros(5))

    def test_degenerate_all_positive_returns_none(self):
        assert infer_label_from_gradients(np.ones((4, 3))) is None
