"""Tests for the membership inference attack (MIA)."""

import numpy as np
import pytest

from repro.attacks import MembershipInferenceAttack
from repro.attacks.mia import train_target_model
from repro.data import synthetic_cifar
from repro.nn import lenet5


@pytest.fixture(scope="module")
def overfit_setup():
    """A small overfit target with a clear membership gap."""
    n, classes = 80, 10
    data = synthetic_cifar(num_samples=2 * n, num_classes=classes, noise=0.5, seed=0)
    members = data.subset(np.arange(n))
    nonmembers = data.subset(np.arange(n, 2 * n))
    model = lenet5(num_classes=classes, seed=5, activation="relu", scale=0.5)
    train_target_model(model, members, epochs=10)
    return model, members, nonmembers


class TestTargetTraining:
    def test_target_memorises_members(self, overfit_setup):
        model, members, nonmembers = overfit_setup
        member_acc = model.accuracy(members.x, members.one_hot_labels())
        nonmember_acc = model.accuracy(nonmembers.x, nonmembers.one_hot_labels())
        assert member_acc > nonmember_acc + 0.2


class TestAttack:
    def test_attack_beats_chance_without_protection(self, overfit_setup):
        model, members, nonmembers = overfit_setup
        attack = MembershipInferenceAttack(model, probes_per_class=60, seed=0)
        result = attack.run(members, nonmembers)
        assert result.score > 0.7
        assert result.metric == "AUC"

    def test_full_protection_defeats_attack(self, overfit_setup):
        model, members, nonmembers = overfit_setup
        attack = MembershipInferenceAttack(model, probes_per_class=40, seed=0)
        result = attack.run(members, nonmembers, protected=(1, 2, 3, 4, 5))
        assert result.score == 0.5
        assert result.detail["features"] == 0

    def test_protection_shrinks_feature_space(self, overfit_setup):
        model, members, nonmembers = overfit_setup
        attack = MembershipInferenceAttack(model, probes_per_class=20, seed=0)
        full = attack.run(members, nonmembers)
        partial = attack.run(members, nonmembers, protected=(5,))
        assert partial.detail["features"] < full.detail["features"]

    def test_dgrad_has_one_row_per_probe(self, overfit_setup):
        model, members, nonmembers = overfit_setup
        attack = MembershipInferenceAttack(model, probes_per_class=15, seed=0)
        x, y = attack.build_dgrad(members, nonmembers)
        assert x.shape[0] == 30
        assert set(np.unique(y)) == {0, 1}

    def test_protected_set_recorded_in_result(self, overfit_setup):
        model, members, nonmembers = overfit_setup
        attack = MembershipInferenceAttack(model, probes_per_class=10, seed=0)
        result = attack.run(members, nonmembers, protected=(2, 5))
        assert result.protected == {2, 5}

    def test_describe_mentions_layers(self, overfit_setup):
        model, members, nonmembers = overfit_setup
        attack = MembershipInferenceAttack(model, probes_per_class=10, seed=0)
        text = attack.run(members, nonmembers, protected=(5,)).describe()
        assert "L5" in text and "MIA" in text
