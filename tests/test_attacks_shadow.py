"""Tests for the shadow-model MIA extension."""

import numpy as np
import pytest

from repro.attacks import ShadowModelAttack
from repro.attacks.mia import train_target_model
from repro.data import synthetic_cifar
from repro.nn import lenet5


@pytest.fixture(scope="module")
def world():
    n, classes = 80, 10
    data = synthetic_cifar(num_samples=4 * n, num_classes=classes, noise=0.5, seed=0)
    factory = lambda seed: lenet5(
        num_classes=classes, seed=seed, activation="relu", scale=0.5
    )
    target = factory(5)
    members = data.subset(np.arange(n))
    train_target_model(target, members, epochs=10)
    return {
        "target": target,
        "members": members,
        "nonmembers": data.subset(np.arange(n, 2 * n)),
        "shadow_pool": data.subset(np.arange(2 * n, 4 * n)),
        "factory": factory,
    }


class TestShadowModelAttack:
    def test_transfers_above_chance(self, world):
        attack = ShadowModelAttack(
            world["factory"], num_shadows=2, epochs=10, probes_per_side=40, seed=0
        )
        result = attack.run(
            world["target"], world["members"], world["nonmembers"], world["shadow_pool"]
        )
        assert result.score > 0.65
        assert result.detail["shadows"] == 2

    def test_full_protection_defeats_transfer(self, world):
        attack = ShadowModelAttack(
            world["factory"], num_shadows=1, epochs=3, probes_per_side=10, seed=0
        )
        result = attack.run(
            world["target"],
            world["members"],
            world["nonmembers"],
            world["shadow_pool"],
            protected=(1, 2, 3, 4, 5),
        )
        assert result.score == 0.5

    def test_attack_name_and_protection_recorded(self, world):
        attack = ShadowModelAttack(
            world["factory"], num_shadows=1, epochs=2, probes_per_side=8, seed=0
        )
        result = attack.run(
            world["target"],
            world["members"],
            world["nonmembers"],
            world["shadow_pool"],
            protected=(5,),
        )
        assert result.attack == "shadow-MIA"
        assert result.protected == {5}

    def test_training_rows_scale_with_shadows(self, world):
        one = ShadowModelAttack(
            world["factory"], num_shadows=1, epochs=2, probes_per_side=8, seed=0
        ).run(
            world["target"], world["members"], world["nonmembers"], world["shadow_pool"]
        )
        two = ShadowModelAttack(
            world["factory"], num_shadows=2, epochs=2, probes_per_side=8, seed=0
        ).run(
            world["target"], world["members"], world["nonmembers"], world["shadow_pool"]
        )
        assert two.detail["train_rows"] == 2 * one.detail["train_rows"]
