"""Tests for the security-audit suite."""

import pytest

from repro.attacks import AttackSuite
from repro.core import NoProtection, StaticPolicy


@pytest.fixture(scope="module")
def suite():
    return AttackSuite(fast=True)


@pytest.fixture(scope="module")
def unprotected_report(suite):
    return suite.audit(NoProtection(5))


@pytest.fixture(scope="module")
def full_report(suite):
    return suite.audit(StaticPolicy(5, [1, 2, 3, 4, 5], max_slices=None))


class TestAudit:
    def test_unprotected_model_is_not_secure(self, unprotected_report):
        assert not unprotected_report.secure
        assert unprotected_report.verdicts["DRIA"].succeeded
        assert unprotected_report.verdicts["MIA"].succeeded

    def test_fully_protected_model_is_secure(self, full_report):
        assert full_report.secure
        assert not full_report.verdicts["DRIA"].succeeded
        assert not full_report.verdicts["MIA"].succeeded

    def test_all_protected_dria_score_is_inf(self, full_report):
        assert full_report.verdicts["DRIA"].result.score == float("inf")

    def test_report_format_readable(self, unprotected_report):
        text = unprotected_report.format()
        assert "DRIA" in text and "MIA" in text
        assert "NOT SECURE" in text

    def test_secure_report_says_secure(self, full_report):
        assert "overall: SECURE" in full_report.format()

    def test_criteria_recorded(self, unprotected_report):
        assert "ImageLoss" in unprotected_report.verdicts["DRIA"].criterion
        assert "AUC" in unprotected_report.verdicts["MIA"].criterion


class TestAuditDpia:
    def test_returns_verdict(self, suite):
        from repro.core import NoProtection

        verdict = suite.audit_dpia(NoProtection(5), cycles=10)
        assert 0.0 <= verdict.result.score <= 1.0
        assert verdict.result.attack == "DPIA"

    def test_wrong_depth_rejected(self, suite):
        from repro.core import NoProtection

        with pytest.raises(ValueError, match="5-layer"):
            suite.audit_dpia(NoProtection(8))
