"""Attack suite over transformer workloads and block policies.

The suite's ``model_factory`` swaps the paper's LeNet-5 reference victim
for a zoo transformer; every attack (DRIA, MIA, DPIA) must run against
block-structured policies, and the ``repro.api.attack_suite`` facade and
``repro blocks`` CLI sweep must surface the same numbers JSON-safely.
"""

import json

import numpy as np
import pytest

import repro.api as api
from repro.attacks.suite import AttackSuite
from repro.cli import main
from repro.core.policy import NoProtection, PeltaPolicy, StaticPolicy
from repro.nn import vit_tiny


def _factory(num_classes, seed):
    return vit_tiny(num_classes=num_classes, seed=seed)


@pytest.fixture(scope="module")
def layout():
    return vit_tiny(num_classes=10, seed=1).layout()


class TestSuiteOnTransformer:
    def test_audit_runs_under_block_policies(self, layout):
        suite = AttackSuite(fast=True, model_factory=_factory)
        for policy in (
            NoProtection(layout),
            PeltaPolicy(layout),
            PeltaPolicy(layout, size_mw=1, v_mw=(0.5, 0.5), seed=2),
        ):
            report = suite.audit(policy)
            assert set(report.verdicts) == {"DRIA", "MIA"}
            for verdict in report.verdicts.values():
                assert np.isfinite(verdict.result.score) or verdict.result.score == float("inf")

    def test_depth_mismatch_rejected(self):
        suite = AttackSuite(fast=True, model_factory=_factory)
        with pytest.raises(ValueError, match="15"):
            suite.audit(NoProtection(5))

    def test_dpia_runs_on_transformer(self, layout):
        suite = AttackSuite(fast=True, model_factory=_factory)
        verdict = suite.audit_dpia(PeltaPolicy(layout), cycles=6)
        assert verdict.result.attack == "DPIA"
        assert 0.0 <= verdict.result.score <= 1.0

    def test_default_suite_unchanged(self):
        """No factory: the LeNet-5 reference path is bitwise untouched."""
        a = AttackSuite(fast=True).audit(NoProtection(5))
        b = AttackSuite(fast=True, model_factory=None).audit(NoProtection(5))
        for name in a.verdicts:
            assert a.verdicts[name].result.score == b.verdicts[name].result.score

    def test_protection_reduces_mia_leakage_surface(self, layout):
        suite = AttackSuite(fast=True, model_factory=_factory)
        none = suite.audit(NoProtection(layout))
        pelta = suite.audit(PeltaPolicy(layout))
        # Protected sets are reflected in the verdict rows.
        assert none.verdicts["MIA"].result.protected == frozenset()
        assert pelta.verdicts["MIA"].result.protected == frozenset(
            {2, 4, 6, 8, 10, 12}
        )


class TestFacade:
    def test_attack_suite_payload(self):
        payload = api.attack_suite("vit_tiny", fast=True)
        assert payload["model"] == "vit_tiny"
        assert set(payload["attacks"]) == {"DRIA", "MIA"}
        json.dumps(payload)  # JSON-safe

    def test_policy_threads_through(self, layout):
        payload = api.attack_suite(
            "vit_tiny", StaticPolicy(layout, ["block2.softmax"]), fast=True
        )
        assert payload["attacks"]["MIA"]["protected"] == [10]
        assert "block2.softmax" in payload["policy"]

    def test_callable_factory_and_default_model(self):
        custom = api.attack_suite(_factory, fast=True)
        assert custom["model"] == "custom"
        reference = api.attack_suite(fast=True)
        assert reference["model"] == "lenet5"

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            api.attack_suite("resnet50", fast=True)

    def test_run_experiment_blocks(self, capsys):
        payload = api.run_experiment("blocks", fast=True)
        labels = [row["label"] for row in payload["rows"]]
        assert labels[0] == "none"
        assert any(label.startswith("MW=") for label in labels)
        assert "Block shielding sweep" in capsys.readouterr().out


class TestCliBlocks:
    def test_blocks_command_writes_json(self, tmp_path, capsys):
        out = tmp_path / "blocks.json"
        assert (
            main(
                [
                    "blocks",
                    "--fast",
                    "--model",
                    "vit_tiny",
                    "--mw-size",
                    "1",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert payload["command"] == "blocks"
        rows = {row["label"]: row for row in payload["rows"]}
        assert set(rows) >= {"none", "static block1", "static block2", "MW=1"}
        # Cost rows ride along: protection costs secure memory.
        assert rows["static all-blocks"]["tee_memory_mib"] > rows["none"]["tee_memory_mib"]
        assert rows["none"]["tee_memory_mib"] == 0.0

    def test_simulate_accepts_model_and_policy(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--clients",
                    "6",
                    "--rounds",
                    "2",
                    "--model",
                    "vit_tiny",
                    "--policy",
                    "pelta-mw:1",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["totals"]["rounds"] == 2

    def test_simulate_policy_spec_changes_cost(self, capsys):
        main(["simulate", "--clients", "4", "--rounds", "1", "--seed", "3"])
        base = json.loads(capsys.readouterr().out)
        main(
            [
                "simulate",
                "--clients", "4", "--rounds", "1", "--seed", "3",
                "--policy", "static:2",
            ]
        )
        protected = json.loads(capsys.readouterr().out)
        assert protected["virtual_seconds"] != base["virtual_seconds"]
