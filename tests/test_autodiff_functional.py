"""Tests for composite functions (linear, conv2d, softmax, losses)."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, functional as F, grad


def t(shape, seed=0, scale=1.0):
    return Tensor(np.random.default_rng(seed).normal(size=shape) * scale)


class TestLinear:
    def test_matches_numpy(self):
        x, w, b = t((4, 3)), t((5, 3), 1), t((5,), 2)
        out = F.linear(x, w, b)
        np.testing.assert_allclose(out.data, x.data @ w.data.T + b.data)

    def test_gradcheck(self):
        check_gradients(
            lambda x, w, b: (F.linear(x, w, b) ** 2).sum(),
            [t((3, 4)), t((2, 4), 1), t((2,), 2)],
        )

    def test_no_bias(self):
        out = F.linear(t((2, 3)), t((4, 3), 1))
        assert out.shape == (2, 4)


class TestConv2d:
    def test_matches_direct_convolution(self):
        """Cross-check the im2col implementation against a naive loop."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        stride, pad = 2, 1
        out = F.conv2d(Tensor(x), Tensor(w), stride=stride, pad=pad).data

        xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        oh = (5 + 2 * pad - 3) // stride + 1
        expected = np.zeros((2, 3, oh, oh))
        for n in range(2):
            for f in range(3):
                for i in range(oh):
                    for j in range(oh):
                        patch = xp[n, :, i * stride : i * stride + 3, j * stride : j * stride + 3]
                        expected[n, f, i, j] = (patch * w[f]).sum()
        np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_bias_added_per_channel(self):
        x, w = t((1, 1, 4, 4)), t((2, 1, 3, 3), 1)
        b = Tensor(np.array([10.0, -10.0]))
        with_bias = F.conv2d(x, w, b, pad=1).data
        without = F.conv2d(x, w, pad=1).data
        np.testing.assert_allclose(with_bias[:, 0] - without[:, 0], 10.0)
        np.testing.assert_allclose(with_bias[:, 1] - without[:, 1], -10.0)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv2d(t((1, 3, 4, 4)), t((2, 4, 3, 3)))

    def test_gradcheck(self):
        check_gradients(
            lambda x, w: (F.conv2d(x, w, stride=1, pad=1) ** 2).sum(),
            [t((1, 2, 4, 4)), t((3, 2, 3, 3), 1)],
        )

    def test_double_backward_matches_numeric(self):
        """d/dx ||dL/dw||^2 — the DRIA code path — against finite differences."""
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)), requires_grad=True)

        def gw_sq(x_t, w_t):
            out = (F.conv2d(x_t, w_t, pad=1) ** 2).mean()
            (gw,) = grad(out, [w_t], create_graph=True)
            return (gw ** 2).sum()

        (gx,) = grad(gw_sq(x, w), [x])
        eps = 1e-5
        numeric = np.zeros_like(x.data)
        for index in np.ndindex(x.shape):
            vals = []
            for sign in (eps, -eps):
                xd = x.data.copy()
                xd[index] += sign
                vals.append(
                    gw_sq(
                        Tensor(xd, requires_grad=True),
                        Tensor(w.data, requires_grad=True),
                    ).item()
                )
            numeric[index] = (vals[0] - vals[1]) / (2 * eps)
        np.testing.assert_allclose(gx.data, numeric, atol=1e-5)


class TestSoftmaxAndLosses:
    def test_softmax_rows_sum_to_one(self):
        out = F.softmax(t((4, 7)))
        np.testing.assert_allclose(out.data.sum(axis=1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        out = F.softmax(Tensor([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_consistent_with_softmax(self):
        x = t((3, 5))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), rtol=1e-10
        )

    def test_cross_entropy_value(self):
        logits = Tensor([[0.0, 0.0]])
        targets = np.array([[1.0, 0.0]])
        assert F.cross_entropy(logits, Tensor(targets)).item() == pytest.approx(
            np.log(2.0)
        )

    def test_cross_entropy_gradient_is_softmax_minus_target(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 3)), requires_grad=True)
        targets = np.eye(3)[[0, 1, 2, 0]]
        loss = F.cross_entropy(logits, Tensor(targets))
        (g,) = grad(loss, [logits])
        expected = (F.softmax(logits).data - targets) / 4
        np.testing.assert_allclose(g.data, expected, rtol=1e-8)

    def test_cross_entropy_shape_mismatch(self):
        with pytest.raises(ValueError, match="must match"):
            F.cross_entropy(t((2, 3)), Tensor(np.zeros((2, 4))))

    def test_mse(self):
        pred = Tensor([[1.0, 2.0]])
        assert F.mse(pred, Tensor([[0.0, 0.0]])).item() == pytest.approx(2.5)

    def test_cross_entropy_gradcheck(self):
        targets = np.eye(4)[[1, 3]]
        check_gradients(
            lambda x: F.cross_entropy(x, Tensor(targets)), [t((2, 4))]
        )


class TestFlattenAndPool:
    def test_flatten(self):
        out = F.flatten(t((2, 3, 4, 5)))
        assert out.shape == (2, 60)

    def test_max_pool_shape(self):
        assert F.max_pool2d(t((1, 3, 8, 8)), 2).shape == (1, 3, 4, 4)
