"""Fused conv2d kernel: bitwise parity with the composed path, gradients,
double backward, and workspace-reuse behaviour."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, grad, ops
from repro.autodiff import functional as F
from repro.autodiff.fused import conv2d_fused
from repro.autodiff.functional import conv2d_composed, set_fused_conv
from repro.autodiff.workspace import Workspace, get_workspace

# (batch, in_ch, height, width, filters, kernel, stride, pad, bias)
SHAPES = [
    (2, 3, 8, 8, 4, 3, 1, 0, True),
    (1, 2, 9, 9, 3, 3, 2, 1, True),
    (3, 4, 10, 10, 5, 5, 2, 2, False),
    (2, 1, 7, 7, 2, 3, 3, 1, True),
    (1, 3, 12, 12, 6, 5, 1, 2, False),
    (4, 2, 6, 6, 3, 2, 2, 0, True),
]


def _random_case(case, seed):
    n, c, h, w, f, k, stride, pad, with_bias = case
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(n, c, h, w)), requires_grad=True)
    weight = Tensor(rng.normal(size=(f, c, k, k)) * 0.3, requires_grad=True)
    bias = Tensor(rng.normal(size=(f,)), requires_grad=True) if with_bias else None
    return x, weight, bias, stride, pad


class TestBitwiseParity:
    """Fused output and gradients equal the composed path bit for bit."""

    @pytest.mark.parametrize("case", SHAPES)
    def test_forward_bitwise(self, case):
        x, w, b, stride, pad = _random_case(case, seed=7)
        fused = conv2d_fused(x, w, b, stride=stride, pad=pad)
        composed = conv2d_composed(x, w, b, stride=stride, pad=pad)
        assert np.array_equal(fused.data, composed.data)

    @pytest.mark.parametrize("case", SHAPES)
    def test_backward_bitwise(self, case):
        x, w, b, stride, pad = _random_case(case, seed=11)
        rng = np.random.default_rng(13)

        def run(op):
            xs = Tensor(x.data.copy(), requires_grad=True)
            ws = Tensor(w.data.copy(), requires_grad=True)
            bs = Tensor(b.data.copy(), requires_grad=True) if b is not None else None
            out = op(xs, ws, bs, stride=stride, pad=pad)
            seed_grad = rng.normal(size=out.shape)
            out.backward(Tensor(seed_grad))
            grads = [xs.grad.data, ws.grad.data]
            if bs is not None:
                grads.append(bs.grad.data)
            return grads

        rng = np.random.default_rng(13)
        fused_grads = run(conv2d_fused)
        rng = np.random.default_rng(13)
        composed_grads = run(conv2d_composed)
        for got, want in zip(fused_grads, composed_grads):
            assert np.array_equal(got, want)

    def test_dispatch_toggle(self):
        x, w, b, stride, pad = _random_case(SHAPES[1], seed=3)
        previous = set_fused_conv(False)
        try:
            composed = F.conv2d(x, w, b, stride=stride, pad=pad)
            set_fused_conv(True)
            fused = F.conv2d(x, w, b, stride=stride, pad=pad)
        finally:
            set_fused_conv(previous)
        assert np.array_equal(fused.data, composed.data)

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 3, 5, 5)))
        w = Tensor(np.zeros((2, 4, 3, 3)))
        with pytest.raises(ValueError, match="channel mismatch"):
            conv2d_fused(x, w)


class TestGradients:
    def test_gradcheck_stride_pad(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(2, 2, 6, 6)))
        w = Tensor(rng.normal(size=(3, 2, 3, 3)) * 0.4)
        b = Tensor(rng.normal(size=(3,)))

        def fn(xs, ws, bs):
            return ops.sum_(conv2d_fused(xs, ws, bs, stride=2, pad=1) ** 2)

        check_gradients(fn, [x, w, b])

    def test_double_backward_matches_composed(self):
        rng = np.random.default_rng(5)
        xd = rng.normal(size=(1, 2, 6, 6))
        wd = rng.normal(size=(2, 2, 3, 3)) * 0.5

        def grad_norm(op):
            x = Tensor(xd.copy(), requires_grad=True)
            w = Tensor(wd.copy(), requires_grad=True)
            out = ops.sum_(op(x, w, None, stride=1, pad=1) ** 2)
            (gx,) = grad(out, [x], create_graph=True)
            gg = ops.sum_(gx ** 2)
            return grad(gg, [w])[0].data

        fused = grad_norm(conv2d_fused)
        composed = grad_norm(conv2d_composed)
        assert np.allclose(fused, composed, atol=1e-10)

    def test_no_grad_input_skips_dx(self):
        rng = np.random.default_rng(9)
        x = Tensor(rng.normal(size=(1, 2, 5, 5)))  # requires_grad=False
        w = Tensor(rng.normal(size=(2, 2, 3, 3)), requires_grad=True)
        out = conv2d_fused(x, w, stride=1, pad=1)
        out.backward(Tensor(np.ones(out.shape)))
        assert w.grad is not None
        assert x.grad is None


class TestWorkspace:
    def test_checkout_reuses_buffer(self):
        ws = Workspace()
        a = ws.checkout((4, 5))
        ws.release(a)
        b = ws.checkout((4, 5))
        assert b is a
        stats = ws.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_checkout_zero_fills(self):
        ws = Workspace()
        a = ws.checkout((3, 3))
        a.fill(7.0)
        ws.release(a)
        b = ws.checkout((3, 3), zero=True)
        assert np.array_equal(b, np.zeros((3, 3)))

    def test_distinct_until_released(self):
        ws = Workspace()
        a = ws.checkout((2, 2))
        b = ws.checkout((2, 2))
        assert a is not b

    def test_clear_drops_cache(self):
        ws = Workspace()
        ws.release(ws.checkout((8, 8)))
        assert ws.cached_bytes > 0
        ws.clear()
        assert ws.cached_bytes == 0

    def test_global_workspace_reused_by_training(self):
        ws = get_workspace()
        ws.clear()
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(2, 2, 8, 8)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        for _ in range(3):
            out = conv2d_fused(x, w, stride=1, pad=1)
            out.backward(Tensor(np.ones(out.shape)))
            x.grad = None
            w.grad = None
        stats = ws.stats()
        assert stats["hits"] > 0  # later iterations hit the free list
