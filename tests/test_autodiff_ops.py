"""Gradcheck every primitive op against finite differences."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, grad
from repro.autodiff import ops


def t(shape, seed=0, scale=1.0):
    return Tensor(np.random.default_rng(seed).normal(size=shape) * scale)


class TestElementwise:
    def test_add(self):
        check_gradients(lambda a, b: (a + b).sum(), [t((3, 4)), t((3, 4), 1)])

    def test_add_broadcast(self):
        check_gradients(lambda a, b: (a + b).sum(), [t((3, 4)), t((4,), 1)])

    def test_sub(self):
        check_gradients(lambda a, b: (a - b * 2.0).sum(), [t((2, 3)), t((2, 3), 1)])

    def test_mul(self):
        check_gradients(lambda a, b: (a * b).sum(), [t((3,)), t((3,), 1)])

    def test_mul_broadcast_scalar_tensor(self):
        check_gradients(lambda a, b: (a * b).sum(), [t((2, 2)), t((), 1)])

    def test_div(self):
        b = Tensor(np.abs(np.random.default_rng(1).normal(size=(3,))) + 1.0)
        check_gradients(lambda a, b: (a / b).sum(), [t((3,)), b])

    def test_neg(self):
        check_gradients(lambda a: (-a * 3.0).sum(), [t((4,))])

    def test_pow(self):
        a = Tensor(np.abs(np.random.default_rng(0).normal(size=(3,))) + 0.5)
        check_gradients(lambda a: (a ** 3).sum(), [a])

    def test_exp(self):
        check_gradients(lambda a: a.exp().sum(), [t((3,), scale=0.5)])

    def test_log(self):
        a = Tensor(np.abs(np.random.default_rng(0).normal(size=(4,))) + 0.5)
        check_gradients(lambda a: a.log().sum(), [a])

    def test_sqrt(self):
        a = Tensor(np.abs(np.random.default_rng(0).normal(size=(4,))) + 0.5)
        check_gradients(lambda a: ops.sqrt(a).sum(), [a])

    def test_abs(self):
        a = Tensor(np.array([1.5, -2.0, 0.7]))
        check_gradients(lambda a: (a.abs() ** 2).sum(), [a])


class TestNonlinearities:
    def test_relu(self):
        a = Tensor(np.array([1.0, -1.0, 0.5, -0.2]))
        check_gradients(lambda a: (ops.relu(a) * 2.0).sum(), [a])

    def test_sigmoid(self):
        check_gradients(lambda a: ops.sigmoid(a).sum(), [t((5,))])

    def test_tanh(self):
        check_gradients(lambda a: (ops.tanh(a) ** 2).sum(), [t((5,))])

    def test_sigmoid_second_order(self):
        x = Tensor([0.3], requires_grad=True)
        y = ops.sigmoid(x).sum()
        (g1,) = grad(y, [x], create_graph=True)
        (g2,) = grad(g1.sum(), [x])
        s = 1 / (1 + np.exp(-0.3))
        expected = s * (1 - s) * (1 - 2 * s)
        assert g2.data[0] == pytest.approx(expected, rel=1e-6)

    def test_constant_input_yields_plain_tensor(self):
        out = ops.sigmoid(Tensor([0.0]))
        assert out.is_leaf


class TestShapes:
    def test_reshape(self):
        check_gradients(lambda a: (a.reshape(6) * 2.0).sum(), [t((2, 3))])

    def test_transpose_default(self):
        check_gradients(lambda a: (a.transpose() ** 2).sum(), [t((2, 3))])

    def test_transpose_axes(self):
        check_gradients(
            lambda a: (a.transpose((1, 2, 0)) ** 2).sum(), [t((2, 3, 4))]
        )

    def test_broadcast_to(self):
        check_gradients(
            lambda a: (ops.broadcast_to(a, (3, 4)) ** 2).sum(), [t((4,))]
        )

    def test_getitem_slice(self):
        check_gradients(lambda a: (a[1:, :2] ** 2).sum(), [t((3, 4))])

    def test_getitem_int(self):
        check_gradients(lambda a: (a[0] ** 2).sum(), [t((3, 4))])

    def test_pad2d(self):
        check_gradients(lambda a: (ops.pad2d(a, 1) ** 2).sum(), [t((1, 2, 3, 3))])

    def test_pad2d_zero_is_noop(self):
        a = t((1, 1, 2, 2))
        assert ops.pad2d(a, 0) is a

    def test_pad2d_rejects_non4d(self):
        with pytest.raises(ValueError, match="4-D"):
            ops.pad2d(t((2, 3)), 1)

    def test_concatenate(self):
        check_gradients(
            lambda a, b: (ops.concatenate([a, b], axis=1) ** 2).sum(),
            [t((2, 3)), t((2, 2), 1)],
        )


class TestReductions:
    def test_sum_all(self):
        check_gradients(lambda a: a.sum() * 2.0, [t((2, 3))])

    def test_sum_axis(self):
        check_gradients(lambda a: (a.sum(axis=1) ** 2).sum(), [t((2, 3))])

    def test_sum_keepdims(self):
        check_gradients(
            lambda a: (a.sum(axis=0, keepdims=True) ** 2).sum(), [t((2, 3))]
        )

    def test_sum_multiple_axes(self):
        check_gradients(lambda a: (a.sum(axis=(0, 2)) ** 2).sum(), [t((2, 3, 4))])

    def test_mean(self):
        check_gradients(lambda a: (a.mean(axis=1) ** 2).sum(), [t((3, 4))])

    def test_mean_matches_numpy(self):
        a = t((3, 4))
        np.testing.assert_allclose(a.mean(axis=0).data, a.data.mean(axis=0))


class TestMatmul:
    def test_matmul(self):
        check_gradients(lambda a, b: (a @ b).sum(), [t((3, 4)), t((4, 2), 1)])

    def test_matmul_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            ops.matmul(t((3,)), t((3, 2)))

    def test_matmul_second_order(self):
        # f(A) = sum((A @ B)^2); grad wrt A is 2 (A@B) B^T, linear in A,
        # so the second derivative through a probe direction is constant.
        a = Tensor(np.eye(2), requires_grad=True)
        b = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        out = ((a @ b) ** 2).sum()
        (g1,) = grad(out, [a], create_graph=True)
        (g2,) = grad((g1 * g1).sum(), [a])
        assert g2.shape == (2, 2)


class TestConvBuildingBlocks:
    def test_im2col_gradient(self):
        check_gradients(
            lambda a: (ops.im2col(a, (2, 2), 1, 0) ** 2).sum(), [t((1, 2, 4, 4))]
        )

    def test_im2col_col2im_adjoint(self):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint identity."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6))
        cols_shape = ops.im2col(Tensor(x), (3, 3), 2, 1).shape
        y = rng.normal(size=cols_shape)
        lhs = (ops.im2col(Tensor(x), (3, 3), 2, 1).data * y).sum()
        rhs = (ops.col2im(Tensor(y), x.shape, (3, 3), 2, 1).data * x).sum()
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_col2im_gradient(self):
        cols = t((1, 8, 9))
        check_gradients(
            lambda c: (ops.col2im(c, (1, 2, 4, 4), (2, 2), 1, 0) ** 2).sum(), [cols]
        )

    def test_invalid_conv_size_raises(self):
        with pytest.raises(ValueError, match="non-positive"):
            ops.im2col(t((1, 1, 2, 2)), (5, 5), 1, 0)


class TestMaxPool:
    def test_forward_matches_manual(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = ops.maxpool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, [[[[5, 7], [13, 15]]]])

    def test_gradient(self):
        check_gradients(lambda a: (ops.maxpool2d(a, 2) ** 2).sum(), [t((1, 2, 4, 4))])

    def test_indivisible_raises(self):
        with pytest.raises(ValueError, match="divisible"):
            ops.maxpool2d(t((1, 1, 5, 4)), 2)

    def test_gradient_routes_to_argmax_only(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]), requires_grad=True)
        out = ops.maxpool2d(x, 2)
        (g,) = grad(out.sum(), [x])
        np.testing.assert_allclose(g.data, [[[[0, 0], [0, 1.0]]]])


class TestExtraActivationsAndClip:
    def test_leaky_relu_gradcheck(self):
        a = Tensor(np.array([1.2, -0.7, 0.3, -2.0]))
        check_gradients(lambda a: (ops.leaky_relu(a, 0.1) ** 2).sum(), [a])

    def test_leaky_relu_values(self):
        out = ops.leaky_relu(Tensor(np.array([2.0, -2.0])), 0.1)
        np.testing.assert_allclose(out.data, [2.0, -0.2])

    def test_softplus_gradcheck(self):
        check_gradients(lambda a: ops.softplus(a).sum(), [t((5,))])

    def test_softplus_stable_for_large_inputs(self):
        out = ops.softplus(Tensor(np.array([800.0, -800.0])))
        assert np.isfinite(out.data).all()
        assert out.data[0] == pytest.approx(800.0)
        assert out.data[1] == pytest.approx(0.0, abs=1e-12)

    def test_clip_gradcheck(self):
        a = Tensor(np.array([0.5, -2.0, 3.0, 0.1]))
        check_gradients(lambda a: (ops.clip(a, -1.0, 1.0) * 2.0).sum(), [a])

    def test_clip_values_and_bounds(self):
        out = ops.clip(Tensor(np.array([-5.0, 0.0, 5.0])), -1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.0, 1.0])

    def test_clip_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            ops.clip(t((2,)), 1.0, -1.0)

    def test_new_activations_registered(self):
        from repro.nn import ACTIVATIONS
        assert "leaky_relu" in ACTIVATIONS
        assert "softplus" in ACTIVATIONS
