"""Property-based tests (hypothesis) for autodiff invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autodiff import Tensor, grad
from repro.autodiff import ops

settings.register_profile("ci", max_examples=25, deadline=None)
settings.load_profile("ci")


def arrays(shape):
    return hnp.arrays(
        np.float64,
        shape,
        elements=st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False),
    )


@given(arrays((3, 4)), arrays((3, 4)))
def test_add_commutes(a, b):
    np.testing.assert_allclose(
        ops.add(Tensor(a), Tensor(b)).data, ops.add(Tensor(b), Tensor(a)).data
    )


@given(arrays((2, 3)), arrays((2, 3)), arrays((2, 3)))
def test_mul_distributes_over_add(a, b, c):
    left = ops.mul(Tensor(a), ops.add(Tensor(b), Tensor(c))).data
    right = ops.add(ops.mul(Tensor(a), Tensor(b)), ops.mul(Tensor(a), Tensor(c))).data
    np.testing.assert_allclose(left, right, atol=1e-12)


@given(arrays((4, 5)))
def test_transpose_is_involution(a):
    t = Tensor(a)
    np.testing.assert_allclose(t.transpose().transpose().data, a)


@given(arrays((2, 6)))
def test_reshape_roundtrip(a):
    t = Tensor(a)
    np.testing.assert_allclose(t.reshape((3, 4)).reshape((2, 6)).data, a)


@given(arrays((3, 4)))
def test_sum_of_parts_equals_total(a):
    t = Tensor(a)
    np.testing.assert_allclose(
        t.sum(axis=0).sum().item(), t.sum().item(), rtol=1e-10, atol=1e-12
    )


@given(arrays((2, 2, 4, 4)))
def test_im2col_preserves_energy_without_overlap(x):
    """With stride == kernel (no overlap), im2col is a permutation."""
    cols = ops.im2col(Tensor(x), (2, 2), 2, 0)
    np.testing.assert_allclose(
        np.sort(cols.data.ravel()), np.sort(x.ravel()), atol=1e-12
    )


@given(arrays((1, 2, 4, 4)))
def test_col2im_im2col_adjoint_identity(x):
    """<im2col(x), y> == <x, col2im(y)> for random y."""
    kernel, stride, pad = (3, 3), 1, 1
    cols = ops.im2col(Tensor(x), kernel, stride, pad)
    y = np.random.default_rng(0).normal(size=cols.shape)
    lhs = float((cols.data * y).sum())
    rhs = float(
        (ops.col2im(Tensor(y), x.shape, kernel, stride, pad).data * x).sum()
    )
    assert abs(lhs - rhs) < 1e-8


@given(arrays((3,)))
def test_gradient_of_sum_is_ones(a):
    t = Tensor(a, requires_grad=True)
    (g,) = grad(t.sum(), [t])
    np.testing.assert_allclose(g.data, np.ones(3))


@given(arrays((3,)), arrays((3,)))
def test_gradient_linearity(a, b):
    """grad of (f + g) equals grad f + grad g."""
    ta = Tensor(a, requires_grad=True)
    f = (ta * Tensor(b)).sum()
    g_ = (ta * ta).sum()
    (combined,) = grad(f + g_, [ta])
    ta2 = Tensor(a, requires_grad=True)
    (gf,) = grad((ta2 * Tensor(b)).sum(), [ta2])
    ta3 = Tensor(a, requires_grad=True)
    (gg,) = grad((ta3 * ta3).sum(), [ta3])
    np.testing.assert_allclose(combined.data, gf.data + gg.data, atol=1e-10)


@given(arrays((2, 4, 4)))
def test_maxpool_output_bounded_by_input(x):
    x4 = x[None]
    out = ops.maxpool2d(Tensor(x4), 2).data
    assert out.max() <= x4.max() + 1e-12
    assert out.min() >= x4.min() - 1e-12
