"""Property-based tests (hypothesis) for autodiff invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autodiff import Tensor, grad
from repro.autodiff import ops
from repro.autodiff.fused import conv2d_fused
from repro.autodiff.functional import conv2d_composed
from repro.autodiff.workspace import Workspace, get_workspace

pytestmark = pytest.mark.property

settings.register_profile("ci", max_examples=25, deadline=None)
settings.load_profile("ci")


def arrays(shape):
    return hnp.arrays(
        np.float64,
        shape,
        elements=st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False),
    )


@given(arrays((3, 4)), arrays((3, 4)))
def test_add_commutes(a, b):
    np.testing.assert_allclose(
        ops.add(Tensor(a), Tensor(b)).data, ops.add(Tensor(b), Tensor(a)).data
    )


@given(arrays((2, 3)), arrays((2, 3)), arrays((2, 3)))
def test_mul_distributes_over_add(a, b, c):
    left = ops.mul(Tensor(a), ops.add(Tensor(b), Tensor(c))).data
    right = ops.add(ops.mul(Tensor(a), Tensor(b)), ops.mul(Tensor(a), Tensor(c))).data
    np.testing.assert_allclose(left, right, atol=1e-12)


@given(arrays((4, 5)))
def test_transpose_is_involution(a):
    t = Tensor(a)
    np.testing.assert_allclose(t.transpose().transpose().data, a)


@given(arrays((2, 6)))
def test_reshape_roundtrip(a):
    t = Tensor(a)
    np.testing.assert_allclose(t.reshape((3, 4)).reshape((2, 6)).data, a)


@given(arrays((3, 4)))
def test_sum_of_parts_equals_total(a):
    t = Tensor(a)
    np.testing.assert_allclose(
        t.sum(axis=0).sum().item(), t.sum().item(), rtol=1e-10, atol=1e-12
    )


@given(arrays((2, 2, 4, 4)))
def test_im2col_preserves_energy_without_overlap(x):
    """With stride == kernel (no overlap), im2col is a permutation."""
    cols = ops.im2col(Tensor(x), (2, 2), 2, 0)
    np.testing.assert_allclose(
        np.sort(cols.data.ravel()), np.sort(x.ravel()), atol=1e-12
    )


@given(arrays((1, 2, 4, 4)))
def test_col2im_im2col_adjoint_identity(x):
    """<im2col(x), y> == <x, col2im(y)> for random y."""
    kernel, stride, pad = (3, 3), 1, 1
    cols = ops.im2col(Tensor(x), kernel, stride, pad)
    y = np.random.default_rng(0).normal(size=cols.shape)
    lhs = float((cols.data * y).sum())
    rhs = float(
        (ops.col2im(Tensor(y), x.shape, kernel, stride, pad).data * x).sum()
    )
    assert abs(lhs - rhs) < 1e-8


@given(arrays((3,)))
def test_gradient_of_sum_is_ones(a):
    t = Tensor(a, requires_grad=True)
    (g,) = grad(t.sum(), [t])
    np.testing.assert_allclose(g.data, np.ones(3))


@given(arrays((3,)), arrays((3,)))
def test_gradient_linearity(a, b):
    """grad of (f + g) equals grad f + grad g."""
    ta = Tensor(a, requires_grad=True)
    f = (ta * Tensor(b)).sum()
    g_ = (ta * ta).sum()
    (combined,) = grad(f + g_, [ta])
    ta2 = Tensor(a, requires_grad=True)
    (gf,) = grad((ta2 * Tensor(b)).sum(), [ta2])
    ta3 = Tensor(a, requires_grad=True)
    (gg,) = grad((ta3 * ta3).sum(), [ta3])
    np.testing.assert_allclose(combined.data, gf.data + gg.data, atol=1e-10)


@given(arrays((2, 4, 4)))
def test_maxpool_output_bounded_by_input(x):
    x4 = x[None]
    out = ops.maxpool2d(Tensor(x4), 2).data
    assert out.max() <= x4.max() + 1e-12
    assert out.min() >= x4.min() - 1e-12


# ----------------------------------------------------------------------
# Fused vs composed conv2d: the equivalence claimed in autodiff.fused,
# checked over random shapes, strides and paddings rather than the
# hand-picked list in test_autodiff_fused.py.
# ----------------------------------------------------------------------

@st.composite
def conv_cases(draw):
    """A random but always-valid conv2d problem (tensors + hyperparams)."""
    n = draw(st.integers(1, 2))
    c = draw(st.integers(1, 2))
    f = draw(st.integers(1, 3))
    kh = draw(st.integers(1, 3))
    kw = draw(st.integers(1, 3))
    stride = draw(st.integers(1, 3))
    pad = draw(st.integers(0, 2))
    h = kh + draw(st.integers(0, 3))
    w = kw + draw(st.integers(0, 3))
    with_bias = draw(st.booleans())
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, c, h, w))
    weight = rng.normal(size=(f, c, kh, kw)) * 0.5
    bias = rng.normal(size=(f,)) if with_bias else None
    return x, weight, bias, stride, pad


def _seed_grad(shape):
    """Deterministic upstream gradient, a function of the output shape only."""
    return np.random.default_rng(int(np.prod(shape))).normal(size=shape)


def _run(op, case, backward=False):
    x_data, w_data, b_data, stride, pad = case
    x = Tensor(x_data.copy(), requires_grad=backward)
    w = Tensor(w_data.copy(), requires_grad=backward)
    b = Tensor(b_data.copy(), requires_grad=backward) if b_data is not None else None
    out = op(x, w, b, stride=stride, pad=pad)
    if not backward:
        return out.data, ()
    out.backward(Tensor(_seed_grad(out.shape)))
    grads = [x.grad.data, w.grad.data]
    if b is not None:
        grads.append(b.grad.data)
    return out.data, grads


@given(conv_cases())
def test_fused_forward_bitwise_equals_composed(case):
    fused, _ = _run(conv2d_fused, case)
    composed, _ = _run(conv2d_composed, case)
    assert np.array_equal(fused, composed)


@given(conv_cases())
def test_fused_backward_bitwise_equals_composed(case):
    fused_out, fused_grads = _run(conv2d_fused, case, backward=True)
    composed_out, composed_grads = _run(conv2d_composed, case, backward=True)
    assert np.array_equal(fused_out, composed_out)
    assert len(fused_grads) == len(composed_grads)
    for got, want in zip(fused_grads, composed_grads):
        assert np.array_equal(got, want)


@settings(max_examples=10, deadline=None)
@given(conv_cases())
def test_fused_double_backward_matches_composed(case):
    x_data, w_data, _b, stride, pad = case

    def grad_of_grad_norm(op):
        x = Tensor(x_data.copy(), requires_grad=True)
        w = Tensor(w_data.copy(), requires_grad=True)
        out = ops.sum_(op(x, w, None, stride=stride, pad=pad) ** 2)
        (gx,) = grad(out, [x], create_graph=True)
        return grad(ops.sum_(gx**2), [w])[0].data

    fused = grad_of_grad_norm(conv2d_fused)
    composed = grad_of_grad_norm(conv2d_composed)
    assert np.allclose(fused, composed, atol=1e-9)


@given(conv_cases(), conv_cases())
def test_workspace_reuse_across_mismatched_shapes(case_a, case_b):
    """Interleaving differently-shaped convs never corrupts pooled scratch."""
    ws = get_workspace()
    ws.clear()
    first, _ = _run(conv2d_fused, case_a, backward=True)
    _run(conv2d_fused, case_b, backward=True)  # pollute the free lists
    again, again_grads = _run(conv2d_fused, case_a, backward=True)
    assert np.array_equal(first, again)
    _, composed_grads = _run(conv2d_composed, case_a, backward=True)
    for got, want in zip(again_grads, composed_grads):
        assert np.array_equal(got, want)


@given(st.integers(1, 6), st.integers(1, 6))
def test_workspace_checkout_shapes_are_exact(rows, cols):
    ws = Workspace()
    buffer = ws.checkout((rows, cols))
    assert buffer.shape == (rows, cols)
    ws.release(buffer)
    assert ws.checkout((rows, cols)) is buffer
