"""Tests for the autodiff graph plumbing (Tensor, backward, grad)."""

import numpy as np
import pytest

from repro.autodiff import Tensor, grad


class TestTensorBasics:
    def test_wraps_data_as_float64(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float64
        assert t.shape == (3,)
        assert t.size == 3

    def test_item_on_scalar(self):
        assert Tensor(2.5).item() == 2.5

    def test_repr_mentions_shape_and_name(self):
        t = Tensor(np.zeros((2, 3)), name="weights")
        assert "(2, 3)" in repr(t)
        assert "weights" in repr(t)

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert b.is_leaf
        assert not b.requires_grad

    def test_clone_stays_connected(self):
        a = Tensor([3.0], requires_grad=True)
        b = a.clone() * 2.0
        (g,) = grad(b.sum(), [a])
        assert g.data[0] == 2.0

    def test_identity_hash_semantics(self):
        a = Tensor([1.0])
        b = Tensor([1.0])
        assert a == a
        assert a != b
        assert len({a, b}) == 2


class TestBackward:
    def test_simple_chain(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x * 3.0
        y.backward()
        assert x.grad.data[0] == pytest.approx(12.0)

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        assert x.grad.data[0] == pytest.approx(5.0)

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_nonscalar_backward_requires_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError, match="non-scalar"):
            (x * 2.0).backward()

    def test_seed_shape_mismatch_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError, match="seed gradient shape"):
            (x * 2.0).backward(Tensor(np.ones(3)))

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a + b).sum().backward()
        assert x.grad.data[0] == pytest.approx(5.0)

    def test_shared_subexpression(self):
        x = Tensor([2.0], requires_grad=True)
        s = x * x  # used twice below
        y = (s + s).sum()
        y.backward()
        assert x.grad.data[0] == pytest.approx(8.0)


class TestGradFunction:
    def test_returns_tuple_aligned_with_inputs(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        out = (a * b).sum()
        ga, gb = grad(out, [a, b])
        assert ga.data[0] == 2.0
        assert gb.data[0] == 1.0

    def test_unused_input_raises_without_flag(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        with pytest.raises(RuntimeError, match="not reachable"):
            grad((a * 3.0).sum(), [b])

    def test_allow_unused_returns_none(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (ga, gb) = grad((a * 3.0).sum(), [a, b], allow_unused=True)
        assert gb is None
        assert ga.data[0] == 3.0

    def test_does_not_touch_grad_attribute(self):
        a = Tensor([1.0], requires_grad=True)
        grad((a * 2.0).sum(), [a])
        assert a.grad is None

    def test_create_graph_enables_second_order(self):
        x = Tensor([3.0], requires_grad=True)
        y = (x * x * x).sum()  # y = x^3, y' = 3x^2, y'' = 6x
        (g1,) = grad(y, [x], create_graph=True)
        (g2,) = grad(g1.sum(), [x])
        assert g2.data[0] == pytest.approx(18.0)

    def test_without_create_graph_gradients_are_detached(self):
        x = Tensor([3.0], requires_grad=True)
        (g1,) = grad((x * x).sum(), [x])
        with pytest.raises(RuntimeError, match="not reachable"):
            grad(g1.sum(), [x])

    def test_explicit_grad_outputs(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        (g,) = grad(y, [x], grad_outputs=Tensor([1.0, 10.0]))
        np.testing.assert_allclose(g.data, [2.0, 20.0])
