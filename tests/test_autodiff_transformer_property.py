"""Property suite: gradients of the attention primitives are correct.

Hypothesis-driven gradcheck (central differences vs reverse-mode) for the
double-backward-safe transformer ops — softmax over the last axis,
layernorm, GELU, batched matmul and the fused attention-weights composite —
plus explicit double-backward checks, since DRIA differentiates through
these gradients.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autodiff import Tensor, grad, ops
from repro.autodiff import functional as F
from repro.autodiff.gradcheck import check_gradients

pytestmark = pytest.mark.property

settings.register_profile("ci", max_examples=25, deadline=None)
settings.load_profile("ci")


def arrays(shape, lo=-2.0, hi=2.0):
    return hnp.arrays(
        np.float64,
        shape,
        elements=st.floats(lo, hi, allow_nan=False, allow_infinity=False),
    )


class TestGradcheck:
    @given(arrays((2, 3, 4)))
    def test_softmax_lastaxis(self, a):
        x = Tensor(a, requires_grad=True)
        check_gradients(lambda t: ops.sum_(F.softmax_lastaxis(t)), [x])

    @given(arrays((3, 5)))
    def test_layer_norm(self, a):
        x = Tensor(a, requires_grad=True)
        w = Tensor(np.linspace(0.5, 1.5, 5), requires_grad=True)
        b = Tensor(np.linspace(-0.2, 0.2, 5), requires_grad=True)
        check_gradients(
            lambda t, wt, bt: ops.sum_(F.layer_norm(t, wt, bt)), [x, w, b],
            atol=1e-3, rtol=1e-3,
        )

    @given(arrays((2, 4)))
    def test_gelu(self, a):
        x = Tensor(a, requires_grad=True)
        check_gradients(lambda t: ops.sum_(F.gelu(t)), [x])

    @given(arrays((2, 3, 2)), arrays((2, 2, 4)))
    def test_bmm(self, a, b):
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        check_gradients(
            lambda x, y: ops.sum_(ops.bmm(x, y)), [ta, tb]
        )

    @given(arrays((1, 3, 4)), arrays((1, 3, 4)))
    def test_attention_weights(self, q, k):
        tq = Tensor(q, requires_grad=True)
        tk = Tensor(k, requires_grad=True)
        check_gradients(
            lambda a, b: ops.sum_(ops.mul(F.attention_weights(a, b), 0.5)),
            [tq, tk],
            atol=1e-3, rtol=1e-3,
        )


class TestDoubleBackward:
    """grad-of-grad works through every attention op (DRIA's requirement)."""

    def _double_grad_matches_numeric(self, fn, x0, eps=1e-5, atol=1e-3):
        x = Tensor(x0, requires_grad=True)
        (g,) = grad(fn(x), [x], create_graph=True)
        (gg,) = grad(ops.sum_(ops.mul(g, g)), [x])
        # numeric derivative of sum(g^2) via central differences
        numeric = np.zeros_like(x0)
        flat = numeric.reshape(-1)
        for i in range(flat.size):
            for sign in (1.0, -1.0):
                bumped = x0.copy().reshape(-1)
                bumped[i] += sign * eps
                xb = Tensor(bumped.reshape(x0.shape), requires_grad=True)
                (gb,) = grad(fn(xb), [xb])
                flat[i] += sign * float((gb.data ** 2).sum()) / (2 * eps)
        np.testing.assert_allclose(gg.data, numeric, atol=atol, rtol=1e-2)

    def test_softmax_lastaxis_double(self):
        rng = np.random.default_rng(0)
        self._double_grad_matches_numeric(
            lambda t: ops.sum_(ops.mul(F.softmax_lastaxis(t), t)),
            rng.standard_normal((2, 2, 3)),
        )

    def test_layer_norm_double(self):
        rng = np.random.default_rng(1)
        self._double_grad_matches_numeric(
            lambda t: ops.sum_(ops.mul(F.layer_norm(t), t)),
            rng.standard_normal((2, 4)),
        )

    def test_gelu_double(self):
        rng = np.random.default_rng(2)
        self._double_grad_matches_numeric(
            lambda t: ops.sum_(F.gelu(t)), rng.standard_normal((3, 3))
        )

    def test_attention_double(self):
        rng = np.random.default_rng(3)

        def fn(t):
            return ops.sum_(ops.mul(F.attention_weights(t, t), 0.25))

        self._double_grad_matches_numeric(
            fn, 0.5 * rng.standard_normal((1, 2, 3))
        )

    def test_vit_gradients_of_gradients(self):
        """End to end: double backward through a whole transformer loss."""
        from repro.nn import one_hot, vit_tiny

        model = vit_tiny(num_classes=4, dim=8, num_blocks=1, seed=0)
        rng = np.random.default_rng(4)
        x = rng.standard_normal((2, *model.input_shape))
        y = one_hot(rng.integers(0, 4, size=2), 4)
        loss, grads = model.loss_and_gradients(x, y, create_graph=True)
        flat = [g for gd in grads for g in gd.values()]
        norm = ops.sum_(ops.mul(flat[0], flat[0]))
        for g in flat[1:]:
            norm = ops.add(norm, ops.sum_(ops.mul(g, g)))
        params = [p for layer in model.layers for p in layer.params.values()]
        second = grad(norm, params, allow_unused=True)
        assert any(
            s is not None and np.isfinite(s.data).all() and np.abs(s.data).sum() > 0
            for s in second
        )
