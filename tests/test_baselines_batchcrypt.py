"""Tests for the BatchCrypt HE-aggregation baseline."""

import numpy as np
import pytest

from repro.baselines import BatchCrypt, QuantizationConfig


@pytest.fixture(scope="module")
def batchcrypt():
    return BatchCrypt(
        QuantizationConfig(value_bits=12, clip=1.0, max_clients=4), key_bits=192
    )


class TestQuantization:
    def test_roundtrip_error_bounded(self):
        config = QuantizationConfig(value_bits=12, clip=1.0)
        values = np.linspace(-1, 1, 101)
        error = np.abs(
            config.dequantize(config.quantize(values)) - values
        ).max()
        assert error <= 1.0 / config.quant_max

    def test_clipping(self):
        config = QuantizationConfig(value_bits=8, clip=0.5)
        out = config.dequantize(config.quantize(np.array([10.0, -10.0])))
        np.testing.assert_allclose(out, [0.5, -0.5])

    def test_guard_bits_cover_client_count(self):
        assert QuantizationConfig(max_clients=8).guard_bits >= 4
        assert QuantizationConfig(max_clients=2).guard_bits >= 2


class TestLaneCodec:
    def test_encode_decode_roundtrip(self, batchcrypt):
        values = np.array([1, -1, 100, -100, 0, 2047, -2048], dtype=np.int64)
        packed = batchcrypt._encode_lanes(values)
        decoded = batchcrypt._decode_lanes(packed, len(values))
        np.testing.assert_array_equal(decoded, values)

    def test_lane_count_positive(self, batchcrypt):
        assert batchcrypt.lanes >= 1


class TestEndToEnd:
    def test_single_vector_roundtrip(self, batchcrypt):
        rng = np.random.default_rng(0)
        vector = rng.normal(0, 0.3, 40)
        agg = batchcrypt.aggregate_plaintext([vector])
        np.testing.assert_allclose(agg, np.clip(vector, -1, 1), atol=2e-3)

    def test_aggregate_equals_sum(self, batchcrypt):
        rng = np.random.default_rng(1)
        vectors = [rng.normal(0, 0.2, 30) for _ in range(4)]
        agg = batchcrypt.aggregate_plaintext(vectors)
        expected = np.sum([np.clip(v, -1, 1) for v in vectors], axis=0)
        np.testing.assert_allclose(agg, expected, atol=5e-3)

    def test_negative_sums_survive_packing(self, batchcrypt):
        vectors = [np.full(5, -0.4), np.full(5, -0.4), np.full(5, -0.1)]
        agg = batchcrypt.aggregate_plaintext(vectors)
        np.testing.assert_allclose(agg, -0.9, atol=5e-3)

    def test_too_many_clients_rejected(self, batchcrypt):
        vectors = [np.zeros(4)] * 5  # max_clients = 4
        with pytest.raises(ValueError, match="guard-bit"):
            batchcrypt.aggregate_plaintext(vectors)

    def test_mismatched_lengths_rejected(self, batchcrypt):
        a = batchcrypt.encrypt_vector(np.zeros(40))
        b = batchcrypt.encrypt_vector(np.zeros(4))
        with pytest.raises(ValueError, match="disagree"):
            batchcrypt.aggregate([a, b])

    def test_server_sees_only_ciphertext(self, batchcrypt):
        """Ciphertexts reveal nothing obviously structural: two encryptions
        of the same vector differ."""
        vector = np.ones(8) * 0.25
        assert batchcrypt.encrypt_vector(vector) != batchcrypt.encrypt_vector(vector)

    def test_quantization_error_helper(self, batchcrypt):
        rng = np.random.default_rng(2)
        err = batchcrypt.quantization_error(rng.normal(0, 0.3, 100))
        assert 0 <= err <= 1.0 / batchcrypt.config.quant_max
