"""Tests for the Paillier cryptosystem (BatchCrypt's substrate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.paillier import (
    PaillierPublicKey,
    _is_probable_prime,
    generate_keypair,
)

settings.register_profile("ci", max_examples=15, deadline=None)
settings.load_profile("ci")


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(256)


class TestPrimality:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 97, 101, 7919):
            assert _is_probable_prime(p)

    def test_small_composites(self):
        for c in (1, 4, 100, 561, 7917):  # 561 is a Carmichael number
            assert not _is_probable_prime(c)


class TestPaillier:
    def test_roundtrip(self, keypair):
        public, private = keypair
        assert private.decrypt(public.encrypt(42)) == 42

    def test_zero_and_max(self, keypair):
        public, private = keypair
        assert private.decrypt(public.encrypt(0)) == 0
        assert private.decrypt(public.encrypt(public.max_plaintext)) == public.max_plaintext

    def test_out_of_range_rejected(self, keypair):
        public, _ = keypair
        with pytest.raises(ValueError):
            public.encrypt(public.n)
        with pytest.raises(ValueError):
            public.encrypt(-1)

    def test_additive_homomorphism(self, keypair):
        public, private = keypair
        c = public.add(public.encrypt(1000), public.encrypt(2345))
        assert private.decrypt(c) == 3345

    def test_add_many(self, keypair):
        public, private = keypair
        cts = [public.encrypt(i) for i in range(10)]
        assert private.decrypt(public.add_many(cts)) == 45

    def test_scalar_multiplication(self, keypair):
        public, private = keypair
        assert private.decrypt(public.multiply_plain(public.encrypt(7), 6)) == 42

    def test_negative_scalar_rejected(self, keypair):
        public, _ = keypair
        with pytest.raises(ValueError):
            public.multiply_plain(public.encrypt(1), -1)

    def test_encryption_is_randomised(self, keypair):
        public, _ = keypair
        assert public.encrypt(5) != public.encrypt(5)

    def test_ciphertext_range_checked_on_decrypt(self, keypair):
        public, private = keypair
        with pytest.raises(ValueError):
            private.decrypt(0)

    def test_tiny_keys_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(32)

    @given(st.integers(0, 10**9), st.integers(0, 10**9))
    def test_homomorphism_property(self, a, b):
        public, private = _CACHED
        c = public.add(public.encrypt(a), public.encrypt(b))
        assert private.decrypt(c) == a + b


_CACHED = generate_keypair(192)
