"""Tests for the TEE-related baselines: PPFL, Slalom, Gecko."""

import numpy as np
import pytest

from repro.baselines import (
    PPFLTrainer,
    SlalomInference,
    SlalomVerificationError,
    quantize_model,
)
from repro.data import synthetic_cifar
from repro.nn import Conv2D, Dense, Sequential, lenet5, mlp
from repro.tee import CostModel


class TestPPFL:
    @pytest.fixture
    def setup(self):
        dataset = synthetic_cifar(num_samples=32, num_classes=4, seed=0)
        model = lenet5(num_classes=4, scale=0.5, seed=1)
        return model, dataset

    def test_trains_every_parameterised_layer(self, setup):
        model, dataset = setup
        before = [model.layer(i).get_weights()["weight"].copy() for i in range(1, 6)]
        trainer = PPFLTrainer(model, epochs_per_layer=1)
        trainer.train(dataset, lr=0.3, batch_size=16)
        for i in range(1, 6):
            after = model.layer(i).get_weights()["weight"]
            assert not np.allclose(after, before[i - 1]), f"layer {i} untouched"

    def test_only_active_layer_changes_per_phase(self, setup):
        """PPFL's freezing discipline: while layer k trains, the others hold."""
        model, dataset = setup
        trainer = PPFLTrainer(model, epochs_per_layer=1)
        # Run only the first phase by truncating the schedule manually:
        # capture weights, train, and confirm the report exists per layer.
        report = trainer.train(dataset, lr=0.1, batch_size=16)
        assert len(report.losses_per_layer) == 5
        assert all(losses for losses in report.losses_per_layer)

    def test_peak_footprint_is_single_layer(self, setup):
        model, _ = setup
        trainer = PPFLTrainer(model)
        peak = trainer.peak_tee_bytes(batch_size=16)
        worst_layer = max(
            layer.tee_memory_bytes(16) for layer in model.layers if layer.params
        )
        assert peak == worst_layer

    def test_cost_accumulates_across_phases(self, setup):
        model, dataset = setup
        trainer = PPFLTrainer(model, cost_model=CostModel(batch_size=16))
        report = trainer.train(dataset, lr=0.1, batch_size=16)
        assert report.simulated_cost.kernel_seconds > 0
        assert report.cycles_used == 5  # one per parameterised layer

    def test_ppfl_sequential_cost_exceeds_gradsec(self, setup):
        """The paper's §9 critique quantified: PPFL's layer-wise schedule
        spends more enclave time than GradSec's single selective pass."""
        model, dataset = setup
        trainer = PPFLTrainer(model, cost_model=CostModel(batch_size=16))
        report = trainer.train(dataset, lr=0.1, batch_size=16)

        from repro.core import ShieldedModel, StaticPolicy

        gradsec_model = lenet5(num_classes=4, scale=0.5, seed=1)
        shielded = ShieldedModel(
            gradsec_model,
            StaticPolicy(5, [2, 5]),
            batch_size=16,
            cost_model=CostModel(batch_size=16),
        )
        rng = np.random.default_rng(0)
        shielded.begin_cycle()
        for batch in dataset.batches(16, rng=rng, drop_last=True):
            shielded.train_step(batch.x, batch.y, lr=0.1)
        shielded.end_cycle()
        assert (
            report.simulated_cost.kernel_seconds
            > shielded.simulated_cost.kernel_seconds
        )


class TestSlalom:
    @pytest.fixture
    def model(self):
        return mlp(num_classes=3, input_shape=(8,), hidden=(6, 5), seed=0)

    def test_matches_reference_forward(self, model):
        slalom = SlalomInference(model, seed=0)
        x = np.random.default_rng(0).normal(size=(4, 8))
        np.testing.assert_allclose(
            slalom.predict(x), model.forward(x).data, atol=1e-8
        )

    def test_detects_additive_tampering(self, model):
        slalom = SlalomInference(model, seed=0)
        x = np.random.default_rng(0).normal(size=(2, 8))
        with pytest.raises(SlalomVerificationError):
            slalom.predict(x, tamper=lambda r: r + 1e-2)

    def test_detects_single_entry_tampering(self, model):
        slalom = SlalomInference(model, seed=0)
        x = np.random.default_rng(0).normal(size=(2, 8))

        def flip_one(result):
            result = result.copy()
            result[0, 0] += 1.0
            return result

        with pytest.raises(SlalomVerificationError):
            slalom.predict(x, tamper=flip_one)

    def test_counts_outsourced_calls(self, model):
        slalom = SlalomInference(model, seed=0)
        slalom.predict(np.zeros((1, 8)))
        assert slalom.outsourced_calls == 3  # one per dense layer
        assert slalom.verifications == 3

    def test_rejects_conv_layers(self):
        model = Sequential(
            [Conv2D(2, 3, pad=1), Dense(3)], input_shape=(1, 4, 4), seed=0
        )
        with pytest.raises(ValueError, match="linear layers"):
            SlalomInference(model)

    def test_no_training_support(self, model):
        assert SlalomInference(model).supports_training() is False


class TestGecko:
    def test_quantization_bounds_error(self):
        model = lenet5(num_classes=5, scale=0.5, seed=0)
        report = quantize_model(model, bits=8)
        assert report.max_weight_error < 0.05

    def test_binary_weights_have_two_levels(self):
        model = mlp(num_classes=3, input_shape=(4,), hidden=(5,), seed=0)
        quantize_model(model, bits=1)
        weights = model.layer(1).params["weight"].data
        assert len(np.unique(np.abs(weights))) == 1

    def test_records_accuracy_delta(self):
        model = lenet5(num_classes=4, scale=0.5, seed=0)
        data = synthetic_cifar(num_samples=16, num_classes=4, seed=0)
        report = quantize_model(
            model, bits=2, x_eval=data.x, y_eval=data.one_hot_labels()
        )
        assert report.accuracy_before is not None
        assert report.accuracy_after is not None

    def test_invalid_bits_rejected(self):
        model = mlp(num_classes=3, input_shape=(4,), hidden=(), seed=0)
        with pytest.raises(ValueError):
            quantize_model(model, bits=0)

    def test_lower_bits_mean_larger_error(self):
        a = lenet5(num_classes=5, scale=0.5, seed=0)
        b = lenet5(num_classes=5, scale=0.5, seed=0)
        high = quantize_model(a, bits=8).max_weight_error
        low = quantize_model(b, bits=2).max_weight_error
        assert low > high
