"""Perf regression gate (``repro perf --compare``) and BENCH provenance."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.bench.perf import TRACKED_METRICS, compare_payloads

REPO_ROOT = Path(__file__).resolve().parent.parent


def _payload(**overrides):
    base = {
        "conv_step": {
            "composed_step_ms": 10.0,
            "fused_step_ms": 2.0,
            "speedup": 5.0,
        },
        "fl_round": {
            "sequential_wall_s": 1.0,
            "parallel_wall_s": 0.5,
            "simulated_speedup": 2.0,
        },
        "serve": {
            "wall_s": 0.1,
            "commits_per_wall_second": 100.0,
            "dispatches_per_wall_second": 4000.0,
        },
        "transformer": {
            "eager_step_ms": 5.0,
            "compiled_step_ms": 1.5,
            "compile_speedup": 3.3,
        },
    }
    for dotted, value in overrides.items():
        section, metric = dotted.split(".")
        base[section][metric] = value
    return base


class TestComparePayloads:
    def test_identical_payloads_have_no_regressions(self):
        rows = compare_payloads(_payload(), _payload())
        assert len(rows) == len(TRACKED_METRICS)
        assert not any(row["regressed"] for row in rows)

    def test_slower_time_past_threshold_regresses(self):
        rows = compare_payloads(
            _payload(**{"conv_step.fused_step_ms": 2.5}), _payload()
        )
        flagged = {r["metric"] for r in rows if r["regressed"]}
        assert flagged == {"conv_step.fused_step_ms"}

    def test_smaller_speedup_past_threshold_regresses(self):
        rows = compare_payloads(
            _payload(**{"fl_round.simulated_speedup": 1.5}), _payload()
        )
        flagged = {r["metric"] for r in rows if r["regressed"]}
        assert flagged == {"fl_round.simulated_speedup"}

    def test_improvement_never_regresses(self):
        rows = compare_payloads(
            _payload(
                **{"conv_step.fused_step_ms": 0.5, "conv_step.speedup": 20.0}
            ),
            _payload(),
        )
        assert not any(row["regressed"] for row in rows)

    def test_within_threshold_change_passes(self):
        rows = compare_payloads(
            _payload(**{"conv_step.fused_step_ms": 2.3}), _payload()
        )
        assert not any(row["regressed"] for row in rows)

    def test_missing_metric_is_skipped(self):
        baseline = _payload()
        del baseline["fl_round"]
        rows = compare_payloads(_payload(), baseline)
        sections = {row["metric"].split(".")[0] for row in rows}
        assert sections == {"conv_step", "serve", "transformer"}

    def test_threshold_is_adjustable(self):
        current = _payload(**{"conv_step.fused_step_ms": 2.2})
        assert not any(
            r["regressed"] for r in compare_payloads(current, _payload())
        )
        assert any(
            r["regressed"]
            for r in compare_payloads(current, _payload(), threshold=0.05)
        )


class TestCliCompareGate:
    def _run(self, monkeypatch, tmp_path, current, baseline, extra=()):
        import repro.bench.perf as perf_mod
        from repro.cli import main

        monkeypatch.setattr(
            perf_mod, "run_perf_suite", lambda **kwargs: current
        )
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(baseline))
        return main(
            ["perf", "--quick", "--compare", str(baseline_path), *extra]
        )

    def test_no_regression_exits_zero(self, monkeypatch, tmp_path, capsys):
        assert self._run(monkeypatch, tmp_path, _payload(), _payload()) == 0
        assert "no tracked metric regressed" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, monkeypatch, tmp_path, capsys):
        current = _payload(**{"conv_step.fused_step_ms": 3.0})
        assert self._run(monkeypatch, tmp_path, current, _payload()) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_custom_threshold(self, monkeypatch, tmp_path):
        current = _payload(**{"conv_step.fused_step_ms": 2.2})
        assert (
            self._run(
                monkeypatch,
                tmp_path,
                current,
                _payload(),
                extra=["--threshold", "0.05"],
            )
            == 1
        )


class TestBenchProvenance:
    @pytest.fixture(autouse=True)
    def _bench_on_path(self):
        bench_dir = str(REPO_ROOT / "benchmarks")
        sys.path.insert(0, bench_dir)
        yield
        sys.path.remove(bench_dir)

    def test_write_result_stamps_provenance(self, tmp_path):
        import common

        out = common.write_result(tmp_path / "BENCH_x.json", {"schema": 1})
        payload = json.loads(out.read_text())
        stamp = payload["provenance"]
        assert len(stamp["commit"]) == 40 or stamp["commit"] == "unknown"
        assert stamp["python"].count(".") == 2
        assert stamp["numpy"]
        assert stamp["timestamp_utc"].endswith("Z")

    def test_existing_provenance_is_preserved(self, tmp_path):
        import common

        marker = {"commit": "abc", "python": "x", "numpy": "y",
                  "machine": "z", "timestamp_utc": "t"}
        out = common.write_result(
            tmp_path / "BENCH_y.json", {"schema": 1, "provenance": marker}
        )
        assert json.loads(out.read_text())["provenance"] == marker

    def test_time_call_shape(self):
        import common

        timing = common.time_call(lambda: sum(range(100)), repeats=3, warmup=1)
        assert timing["best_s"] <= timing["median_s"]
        assert timing["repeats"] == 3
        with pytest.raises(ValueError):
            common.time_call(lambda: None, repeats=0)
