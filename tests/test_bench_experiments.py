"""Fast-mode runs of every benchmark driver (pipeline smoke + sanity)."""

import pytest

from repro.bench import (
    DPIA_BEST_V_MW,
    dpia_experiment,
    dria_experiment,
    mia_experiment,
    v_mw_search,
)
from repro.core import DynamicPolicy, NoProtection, StaticPolicy


class TestDriaDriver:
    def test_rows_per_protected_set(self):
        rows = dria_experiment([(), (2,)], fast=True)
        assert len(rows) == 2
        assert rows[0].metric == "ImageLoss"

    def test_protection_increases_image_loss(self):
        rows = dria_experiment([(), (1, 2)], iterations=60, model_scale=0.5)
        assert rows[1].score > rows[0].score


class TestMiaDriver:
    def test_fast_mode_produces_auc_rows(self):
        rows = mia_experiment([(), (1, 2, 3, 4, 5)], fast=True)
        assert rows[0].metric == "AUC"
        assert 0.0 <= rows[0].score <= 1.0
        # Full protection is a coin flip by construction.
        assert rows[1].score == 0.5


class TestDpiaDriver:
    def test_policies_evaluated(self):
        rows = dpia_experiment(
            [
                ("none", NoProtection(5)),
                ("static L4", StaticPolicy(5, [4])),
            ],
            fast=True,
        )
        assert [r.label for r in rows] == ["none", "static L4"]
        for row in rows:
            assert 0.0 <= row.score <= 1.0

    def test_dynamic_policy_row_includes_description(self):
        policy = DynamicPolicy(5, 2, DPIA_BEST_V_MW[2], seed=3)
        rows = dpia_experiment([("dyn", policy)], fast=True)
        assert "dynamic" in rows[0].extra["policy"]


class TestVMWSearch:
    def test_search_returns_valid_distribution(self):
        result = v_mw_search(size_mw=2, fast=True)
        assert len(result.best_v_mw) == 4
        assert sum(result.best_v_mw) == pytest.approx(1.0)
        assert result.best_score == min(s for _, s in result.scores)
