"""Smoke test for the perf microbenchmark harness (marked ``perf``)."""

import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "benchmarks" / "bench_perf_kernels.py"


@pytest.mark.perf
def test_bench_perf_kernels_quick(tmp_path, spawn_python):
    out = tmp_path / "BENCH_kernels.json"
    spawn_python(SCRIPT, "--quick", "--workers", "2", "--out", out)
    payload = json.loads(out.read_text())
    assert payload["schema"] == 1
    assert payload["quick"] is True
    conv = payload["conv_step"]
    assert conv["composed_step_ms"] > 0 and conv["fused_step_ms"] > 0
    assert conv["speedup"] == pytest.approx(
        conv["composed_step_ms"] / conv["fused_step_ms"]
    )
    fl = payload["fl_round"]
    assert fl["num_clients"] == 8 and fl["max_workers"] == 2
    assert fl["aggregated_weights_identical"] is True
    assert fl["simulated_speedup"] > 1.0
    assert payload["workspace"]["hits"] > 0


@pytest.mark.perf
def test_cli_perf_subcommand(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "perf.json"
    assert main(["perf", "--quick", "--workers", "2", "--out", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == 1
    assert "conv_step" in payload and "fl_round" in payload
