"""Tests for benchmark table formatting and reference data integrity."""

import pytest

from repro.bench.reference import (
    FIG6_LENET_AUC,
    TABLE5_DYNAMIC,
    TABLE5_STATIC,
    TABLE6_DYNAMIC_MW2,
    TABLE6_DYNAMIC_MW3,
    TABLE6_DYNAMIC_MW4,
    TABLE6_STATIC,
)
from repro.bench.tables import format_comparison, layers_label


class TestFormatting:
    def test_layers_label(self):
        assert layers_label([5, 2]) == "L2+L5"
        assert layers_label([]) == "none"

    def test_format_comparison_with_paper_value(self):
        text = format_comparison("L2", 0.5, 0.565, "AUC")
        assert "0.500" in text and "0.565" in text

    def test_format_comparison_without_paper_value(self):
        assert "n/a" in format_comparison("x", 1.0, None, "s")


class TestReferenceIntegrity:
    """The transcribed paper numbers must be self-consistent."""

    def test_table6_allocation_additive_in_paper(self):
        # The paper's own data: alloc(L2+L5) == alloc(L2) + alloc(L5).
        assert TABLE6_STATIC[(2, 5)][2] == pytest.approx(
            TABLE6_STATIC[(2,)][2] + TABLE6_STATIC[(5,)][2], abs=1e-9
        )

    def test_table6_memory_roughly_additive(self):
        combined = TABLE6_STATIC[(2, 5)][3]
        parts = TABLE6_STATIC[(2,)][3] + TABLE6_STATIC[(5,)][3]
        assert combined == pytest.approx(parts, abs=0.01)

    def test_dynamic_windows_cover_expected_positions(self):
        assert set(TABLE6_DYNAMIC_MW2) == {(1, 2), (2, 3), (3, 4), (4, 5)}
        assert set(TABLE6_DYNAMIC_MW3) == {(1, 2, 3), (2, 3, 4), (3, 4, 5)}
        assert set(TABLE6_DYNAMIC_MW4) == {(1, 2, 3, 4), (2, 3, 4, 5)}

    def test_table5_dynamic_beats_static(self):
        # The paper's central claim, as transcribed.
        assert TABLE5_DYNAMIC["MW=2"] < min(TABLE5_STATIC.values())

    def test_fig6_auc_monotone_decreasing_with_protection(self):
        ordered = [(), (5,), (4, 5), (3, 4, 5), (2, 3, 4, 5)]
        values = [FIG6_LENET_AUC[c] for c in ordered]
        assert values == sorted(values, reverse=True)
