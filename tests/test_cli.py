"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_fast_flag(self):
        args = build_parser().parse_args(["fig5", "--fast"])
        assert args.fast is True

    def test_cycles_option(self):
        args = build_parser().parse_args(["table5", "--cycles", "12"])
        assert args.cycles == 12


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table5", "table6", "fig5", "fig6", "fig8"):
            assert name in out

    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "L2+L5" in out
        assert "MiB" in out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "DarkneTZ" in out

    def test_fig5_fast(self, capsys):
        assert main(["fig5", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "ImageLoss" in out

    def test_fig6_fast(self, capsys):
        assert main(["fig6", "--fast"]) == 0
        assert "AUC" in capsys.readouterr().out

    def test_table5_fast(self, capsys):
        assert main(["table5", "--fast"]) == 0
        assert "MW=2" in capsys.readouterr().out

    def test_summary(self, capsys):
        assert main(["summary"]) == 0
        assert "GradSec" in capsys.readouterr().out
