"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import validate_trace


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_fast_flag(self):
        args = build_parser().parse_args(["fig5", "--fast"])
        assert args.fast is True

    def test_rounds_option(self):
        args = build_parser().parse_args(["table5", "--rounds", "12"])
        assert args.rounds == 12

    def test_cycles_is_hidden_alias_of_rounds(self):
        args = build_parser().parse_args(["table5", "--cycles", "12"])
        assert args.rounds == 12
        # The alias never shadows the canonical default...
        assert build_parser().parse_args(["table5"]).rounds == 36
        # ...and stays out of --help.
        table5 = build_parser()._subparsers._group_actions[0].choices["table5"]
        assert "--cycles" not in table5.format_help()

    def test_shared_flags_spelled_identically(self):
        parser = build_parser()
        subs = parser._subparsers._group_actions[0].choices
        shared = {
            # Each subcommand carries every shared flag that is meaningful
            # for it, under the one canonical spelling.
            "table5": ("--seed", "--rounds", "--out"),
            "fig5": ("--seed", "--rounds", "--out"),
            "perf": ("--clients", "--out"),
            "trace": ("--clients", "--seed", "--rounds", "--out"),
            "simulate": ("--clients", "--seed", "--rounds", "--out"),
        }
        for name, flags in shared.items():
            help_text = subs[name].format_help()
            for flag in flags:
                assert flag in help_text, f"{name} missing {flag}"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table5", "table6", "fig5", "fig6", "fig8"):
            assert name in out

    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "L2+L5" in out
        assert "MiB" in out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "DarkneTZ" in out

    def test_fig5_fast(self, capsys):
        assert main(["fig5", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "ImageLoss" in out

    def test_fig6_fast(self, capsys):
        assert main(["fig6", "--fast"]) == 0
        assert "AUC" in capsys.readouterr().out

    def test_table5_fast(self, capsys):
        assert main(["table5", "--fast"]) == 0
        assert "MW=2" in capsys.readouterr().out

    def test_summary(self, capsys):
        assert main(["summary"]) == 0
        assert "GradSec" in capsys.readouterr().out


class TestTrace:
    """``repro trace`` emits schema-valid, properly nested, ordered JSON."""

    def run_trace(self, capsys, argv=("trace",)):
        assert main(list(argv)) == 0
        return json.loads(capsys.readouterr().out)

    def test_emits_schema_valid_json(self, capsys):
        payload = self.run_trace(capsys)
        assert payload["schema"] == 1
        assert payload["command"] == "trace"
        assert payload["config"]["clients"] == 2
        validate_trace(payload["trace"])

    def test_span_structure_covers_the_round(self, capsys):
        payload = self.run_trace(capsys)
        spans = payload["trace"]["spans"]
        names = {span["name"] for span in spans}
        assert {"fl.round", "fl.client.train", "tee.smc"} <= names
        # Fake-clock timestamps: creation order is strictly increasing.
        starts = [span["start"] for span in spans]
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)
        # Client training happens inside the round span.
        (round_span,) = [s for s in spans if s["name"] == "fl.round"]
        trains = [s for s in spans if s["name"] == "fl.client.train"]
        assert len(trains) == payload["config"]["clients"]
        for train in trains:
            assert train["parent_id"] == round_span["span_id"]

    def test_metrics_snapshot_included(self, capsys):
        payload = self.run_trace(capsys)
        counters = payload["metrics"]["counters"]
        assert "tee.smc.calls" in counters
        assert "fl.rounds" in counters
        assert sum(counters["fl.client.steps"].values()) == (
            payload["config"]["clients"] * payload["config"]["steps"]
        )

    def test_protect_option_changes_smc_attribution(self, capsys):
        payload = self.run_trace(capsys, ("trace", "--protect", "2"))
        assert payload["config"]["protected_layers"] == [2]
        smc = [
            s
            for s in payload["trace"]["spans"]
            if s["name"] == "tee.smc"
            and s["attributes"].get("command") == "forward_run"
        ]
        assert smc
        for span in smc:
            assert span["attributes"]["indices"] == [2]

    def test_out_writes_file(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert main(["trace", "--out", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(target.read_text())
        validate_trace(payload["trace"])
