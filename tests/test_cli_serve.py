"""``repro serve`` CLI suite: determinism, flags, kill -9 + resume."""

import json
import signal
import time

import pytest

pytestmark = pytest.mark.serve

BASE = [
    "serve",
    "--tenants", "2",
    "--clients", "80",
    "--commits", "3",
    "--buffer-size", "8",
    "--concurrency", "16",
    "--seed", "5",
]


@pytest.fixture
def serve_cli(tmp_path):
    """Run ``repro serve`` in-process over the base load, return the bytes."""
    from repro.cli import main

    def run(name, *extra):
        out = tmp_path / name
        assert main([*BASE, "--out", str(out), *extra]) == 0
        return out.read_bytes()

    return run


class TestCli:
    def test_two_invocations_are_byte_identical(self, serve_cli):
        assert serve_cli("a.json") == serve_cli("b.json")

    def test_report_shape(self, serve_cli):
        payload = json.loads(serve_cli("r.json"))
        assert payload["schema"] == 1 and payload["command"] == "serve"
        assert len(payload["jobs"]) == 2
        tenants = {job["tenant"] for job in payload["jobs"]}
        assert tenants == {"tenant-0", "tenant-1"}
        for job in payload["jobs"]:
            assert job["commits"] == 3
            assert job["state"] == "done"
            assert len(job["weights_sha256"]) == 64

    def test_workers_flag_commits_same_bytes(self, serve_cli):
        dense = json.loads(serve_cli("w0.json", "--shards", "4"))
        pooled = json.loads(serve_cli("w2.json", "--shards", "4", "--workers", "2"))
        for a, b in zip(dense["jobs"], pooled["jobs"]):
            assert a["weights_sha256"] == b["weights_sha256"]

    def test_compression_flags_reduce_uplink(self, serve_cli):
        dense = json.loads(serve_cli("d.json"))
        sparse = json.loads(
            serve_cli("s.json", "--ratio", "0.125", "--encoding", "f32")
        )
        for a, b in zip(dense["jobs"], sparse["jobs"]):
            assert a["bytes_up_per_client"] >= 4.0 * b["bytes_up_per_client"]

    def test_listed_in_repro_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        assert "serve" in capsys.readouterr().out


CHAOS = [*BASE, "--chaos", "--chaos-rate", "0.1", "--chaos-seed", "2"]


@pytest.mark.chaos
class TestChaosCli:
    def test_chaos_report_carries_transport_sections(self, serve_cli):
        payload = json.loads(
            serve_cli("c.json", "--chaos", "--chaos-rate", "0.1", "--chaos-seed", "2")
        )
        for job in payload["jobs"]:
            transport = job["transport"]
            assert transport["chaos_rate"] == 0.1
            assert transport["shed"] == 0 and transport["refused"] == 0
            assert transport["dedup_hits"] == transport["dup_clean_deliveries"]

    def test_chaos_weights_match_the_fault_free_run(self, serve_cli):
        clean = json.loads(serve_cli("clean.json", "--chaos", "--chaos-rate", "0"))
        chaotic = json.loads(
            serve_cli("f.json", "--chaos", "--chaos-rate", "0.2", "--chaos-seed", "7")
        )
        for a, b in zip(clean["jobs"], chaotic["jobs"]):
            assert a["weights_sha256"] == b["weights_sha256"]

    def test_breaker_budget_flag_reports_trips(self, serve_cli):
        payload = json.loads(
            serve_cli(
                "bk.json", "--chaos", "--chaos-rate", "0.2", "--chaos-seed", "0",
                "--chaos-breaker-budget", "1",
            )
        )
        assert any(
            job["transport"]["breaker_trips"] >= 1 for job in payload["jobs"]
        )


class TestKillResume:
    def test_sigkill_mid_run_then_resume_is_byte_identical(
        self, tmp_path, spawn_repro, spawn_repro_background
    ):
        # reference: the same load, uninterrupted (its own state dir)
        ref_out = tmp_path / "ref.json"
        spawn_repro(
            *BASE, "--state-dir", str(tmp_path / "ref-state"),
            "--out", str(ref_out),
        )

        state_dir = tmp_path / "state"
        out = tmp_path / "resumed.json"
        victim = spawn_repro_background(
            *BASE, "--state-dir", str(state_dir), "--out", str(out)
        )
        # wait for the first sealed checkpoint to land, then kill -9
        deadline = time.time() + 120
        while time.time() < deadline:
            if state_dir.exists() and any(state_dir.rglob("*")):
                break
            time.sleep(0.02)
        else:
            pytest.fail("no checkpoint appeared before the deadline")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)

        # same command line again: restores from the checkpoint and finishes
        spawn_repro(*BASE, "--state-dir", str(state_dir), "--out", str(out))
        assert out.read_bytes() == ref_out.read_bytes()

    @pytest.mark.chaos
    def test_sigkill_mid_chaos_then_resume_is_byte_identical(
        self, tmp_path, spawn_repro, spawn_repro_background
    ):
        # the tentpole's crash story: dedup + retransmit state ride the
        # sealed checkpoints, so a kill -9 in the middle of a fault storm
        # resumes to the same report bytes as the uninterrupted chaos run
        ref_out = tmp_path / "ref.json"
        spawn_repro(
            *CHAOS, "--state-dir", str(tmp_path / "ref-state"),
            "--out", str(ref_out),
        )

        state_dir = tmp_path / "state"
        out = tmp_path / "resumed.json"
        victim = spawn_repro_background(
            *CHAOS, "--state-dir", str(state_dir), "--out", str(out)
        )
        deadline = time.time() + 120
        while time.time() < deadline:
            if state_dir.exists() and any(state_dir.rglob("*")):
                break
            time.sleep(0.02)
        else:
            pytest.fail("no checkpoint appeared before the deadline")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)

        spawn_repro(*CHAOS, "--state-dir", str(state_dir), "--out", str(out))
        assert out.read_bytes() == ref_out.read_bytes()
