"""The ``repro simulate`` command and the trace traffic section.

The base fleet (80 clients, 3 rounds, seed 7, dropout/straggler faults)
comes from the shared ``simulate_cli`` fixture in ``conftest.py``.
"""

from __future__ import annotations

import json

from repro.cli import main


class TestSimulateCommand:
    def test_report_shape(self, simulate_cli, capsys):
        payload = json.loads(simulate_cli("report.json"))
        assert payload["command"] == "simulate"
        assert payload["config"]["num_clients"] == 80
        assert len(payload["rounds"]) == 3
        assert payload["totals"]["rounds"] == 3
        assert payload["totals"]["dropouts"] > 0
        assert len(payload["weights_sha256"]) == 64
        assert "sim.rounds" in payload["metrics"]["counters"]

    def test_same_seed_byte_identical(self, simulate_cli):
        first = simulate_cli("a.json")
        second = simulate_cli("b.json")
        assert first == second

    def test_different_seed_differs(self, simulate_cli):
        first = simulate_cli("a.json")
        # the repeated --seed overrides the base value (argparse keeps last)
        assert first != simulate_cli("c.json", "--seed", "8")

    def test_prints_to_stdout_without_out(self, capsys):
        assert main(["simulate", "--clients", "20", "--rounds", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "simulate"

    def test_kill_and_resume_across_invocations(self, simulate_cli, tmp_path):
        """A killed server restarted over --state-dir finishes with weights
        bitwise-identical to the uninterrupted run."""
        state = tmp_path / "state"
        uninterrupted = json.loads(simulate_cli("full.json"))
        # "killed" run: only the first 2 of 3 rounds happen
        simulate_cli("partial.json", "--rounds", "2", "--state-dir", str(state))
        resumed = json.loads(
            simulate_cli("resumed.json", "--state-dir", str(state))
        )
        assert resumed["resumed_from_round"] == 2
        assert resumed["weights_sha256"] == uninterrupted["weights_sha256"]
        assert resumed["rounds"] == uninterrupted["rounds"]

    def test_listed(self, capsys):
        assert main(["list"]) == 0
        assert "simulate" in capsys.readouterr().out


class TestByzantineFlags:
    BYZANTINE = [
        "--byzantine", "0.3",
        "--attack", "scale",
        "--rule", "trimmed_mean",
        "--max-norm", "6",
        "--drift", "0.3",
        "--update-scale", "0.01",
    ]

    def test_flags_thread_into_the_report(self, simulate_cli):
        payload = json.loads(simulate_cli("byz.json", *self.BYZANTINE))
        assert payload["rule"] == "trimmed_mean"
        assert payload["config"]["byzantine"] == 0.3
        assert payload["config"]["attack"] == "scale"
        assert payload["config"]["max_norm"] == 6.0
        assert payload["totals"]["attacked"] > 0
        assert payload["totals"]["admission_rejected"] > 0
        assert "final_accuracy" in payload

    def test_byzantine_run_byte_identical(self, simulate_cli):
        first = simulate_cli("byz-a.json", *self.BYZANTINE)
        second = simulate_cli("byz-b.json", *self.BYZANTINE)
        assert first == second

    def test_rule_changes_the_weights(self, simulate_cli):
        base = ["--byzantine", "0.3", "--attack", "sign_flip"]
        fedavg = json.loads(simulate_cli("r-fedavg.json", *base))
        krum = json.loads(simulate_cli("r-krum.json", *base, "--rule", "krum"))
        assert fedavg["weights_sha256"] != krum["weights_sha256"]

    def test_clip_admits_instead_of_rejecting(self, simulate_cli):
        payload = json.loads(
            simulate_cli("clip.json", *self.BYZANTINE, "--clip")
        )
        assert payload["totals"]["admission_rejected"] == 0
        assert payload["totals"]["admission_clipped"] > 0


class TestTraceTraffic:
    def test_trace_reports_traffic_totals(self, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "--clients", "2", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        traffic = payload["traffic"]
        assert traffic["downloads"] == 2 and traffic["uploads"] == 2
        assert traffic["downlink_bytes"] > 0 and traffic["uplink_bytes"] > 0
        counters = payload["metrics"]["counters"]
        assert "fl.bytes.down" in counters
        assert "fl.bytes.up" in counters

    def test_trace_exports_robustness_metrics(self, tmp_path):
        out = tmp_path / "trace.json"
        assert main([
            "trace", "--clients", "2", "--rule", "median", "--out", str(out),
        ]) == 0
        counters = json.loads(out.read_text())["metrics"]["counters"]
        # Present (zero-valued on a healthy fleet) because the admission
        # controller and reputation ledger register them at construction.
        assert "fl.admission.rejected" in counters
        assert "fl.reputation.quarantined" in counters
        assert counters["fl.aggregate.rule"] == {"rule=median": 1.0}
