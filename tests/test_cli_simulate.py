"""The ``repro simulate`` command and the trace traffic section."""

from __future__ import annotations

import json

from repro.cli import main


def run_simulate(tmp_path, name, *extra):
    out = tmp_path / name
    argv = [
        "simulate",
        "--clients", "80",
        "--rounds", "3",
        "--seed", "7",
        "--dropout", "0.2",
        "--straggler", "0.1",
        "--out", str(out),
        *extra,
    ]
    assert main(argv) == 0
    return out.read_bytes()


class TestSimulateCommand:
    def test_report_shape(self, tmp_path, capsys):
        payload = json.loads(run_simulate(tmp_path, "report.json"))
        assert payload["command"] == "simulate"
        assert payload["config"]["num_clients"] == 80
        assert len(payload["rounds"]) == 3
        assert payload["totals"]["rounds"] == 3
        assert payload["totals"]["dropouts"] > 0
        assert len(payload["weights_sha256"]) == 64
        assert "sim.rounds" in payload["metrics"]["counters"]

    def test_same_seed_byte_identical(self, tmp_path):
        first = run_simulate(tmp_path, "a.json")
        second = run_simulate(tmp_path, "b.json")
        assert first == second

    def test_different_seed_differs(self, tmp_path):
        first = run_simulate(tmp_path, "a.json")
        out = tmp_path / "c.json"
        assert main([
            "simulate", "--clients", "80", "--rounds", "3", "--seed", "8",
            "--dropout", "0.2", "--straggler", "0.1", "--out", str(out),
        ]) == 0
        assert first != out.read_bytes()

    def test_prints_to_stdout_without_out(self, capsys):
        assert main(["simulate", "--clients", "20", "--rounds", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "simulate"

    def test_kill_and_resume_across_invocations(self, tmp_path):
        """A killed server restarted over --state-dir finishes with weights
        bitwise-identical to the uninterrupted run."""
        state = tmp_path / "state"
        uninterrupted = json.loads(run_simulate(tmp_path, "full.json"))
        # "killed" run: only the first 2 of 3 rounds happen
        partial = tmp_path / "partial.json"
        assert main([
            "simulate", "--clients", "80", "--rounds", "2", "--seed", "7",
            "--dropout", "0.2", "--straggler", "0.1",
            "--state-dir", str(state), "--out", str(partial),
        ]) == 0
        resumed_bytes = run_simulate(
            tmp_path, "resumed.json", "--state-dir", str(state)
        )
        resumed = json.loads(resumed_bytes)
        assert resumed["resumed_from_round"] == 2
        assert resumed["weights_sha256"] == uninterrupted["weights_sha256"]
        assert resumed["rounds"] == uninterrupted["rounds"]

    def test_listed(self, capsys):
        assert main(["list"]) == 0
        assert "simulate" in capsys.readouterr().out


class TestByzantineFlags:
    BYZANTINE = [
        "--byzantine", "0.3",
        "--attack", "scale",
        "--rule", "trimmed_mean",
        "--max-norm", "6",
        "--drift", "0.3",
        "--update-scale", "0.01",
    ]

    def test_flags_thread_into_the_report(self, tmp_path):
        payload = json.loads(
            run_simulate(tmp_path, "byz.json", *self.BYZANTINE)
        )
        assert payload["rule"] == "trimmed_mean"
        assert payload["config"]["byzantine"] == 0.3
        assert payload["config"]["attack"] == "scale"
        assert payload["config"]["max_norm"] == 6.0
        assert payload["totals"]["attacked"] > 0
        assert payload["totals"]["admission_rejected"] > 0
        assert "final_accuracy" in payload

    def test_byzantine_run_byte_identical(self, tmp_path):
        first = run_simulate(tmp_path, "byz-a.json", *self.BYZANTINE)
        second = run_simulate(tmp_path, "byz-b.json", *self.BYZANTINE)
        assert first == second

    def test_rule_changes_the_weights(self, tmp_path):
        base = ["--byzantine", "0.3", "--attack", "sign_flip"]
        fedavg = json.loads(run_simulate(tmp_path, "r-fedavg.json", *base))
        krum = json.loads(
            run_simulate(tmp_path, "r-krum.json", *base, "--rule", "krum")
        )
        assert fedavg["weights_sha256"] != krum["weights_sha256"]

    def test_clip_admits_instead_of_rejecting(self, tmp_path):
        payload = json.loads(
            run_simulate(tmp_path, "clip.json", *self.BYZANTINE, "--clip")
        )
        assert payload["totals"]["admission_rejected"] == 0
        assert payload["totals"]["admission_clipped"] > 0


class TestTraceTraffic:
    def test_trace_reports_traffic_totals(self, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "--clients", "2", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        traffic = payload["traffic"]
        assert traffic["downloads"] == 2 and traffic["uploads"] == 2
        assert traffic["downlink_bytes"] > 0 and traffic["uplink_bytes"] > 0
        counters = payload["metrics"]["counters"]
        assert "fl.bytes.down" in counters
        assert "fl.bytes.up" in counters

    def test_trace_exports_robustness_metrics(self, tmp_path):
        out = tmp_path / "trace.json"
        assert main([
            "trace", "--clients", "2", "--rule", "median", "--out", str(out),
        ]) == 0
        counters = json.loads(out.read_text())["metrics"]["counters"]
        # Present (zero-valued on a healthy fleet) because the admission
        # controller and reputation ledger register them at construction.
        assert "fl.admission.rejected" in counters
        assert "fl.reputation.quarantined" in counters
        assert counters["fl.aggregate.rule"] == {"rule=median": 1.0}
