"""Tests for leakage views (the attacker-facing record)."""

import numpy as np
import pytest

from repro.core import CycleLeakage, NoProtection, ShieldedModel, StaticPolicy
from repro.nn import mlp, one_hot


def run_cycle(protected, steps=2, lr=0.4, seed=0):
    model = mlp(num_classes=4, input_shape=(6,), hidden=(8, 5), seed=seed)
    policy = StaticPolicy(3, protected, max_slices=None) if protected else NoProtection(3)
    shielded = ShieldedModel(model, policy, batch_size=6)
    rng = np.random.default_rng(1)
    x = rng.normal(size=(6, 6))
    y = one_hot(rng.integers(0, 4, 6), 4)
    shielded.begin_cycle()
    for _ in range(steps):
        shielded.train_step(x, y, lr=lr)
    return model, shielded.end_cycle()


class TestRecording:
    def test_recording_protected_gradient_asserts(self):
        leak = CycleLeakage(cycle=0, protected=frozenset({2}), num_layers=3)
        with pytest.raises(AssertionError):
            leak.record_gradient(2, "weight", np.zeros(3))

    def test_gradients_per_step_accumulate(self):
        _, leak = run_cycle([], steps=3)
        assert len(leak.gradients[0]["weight"]) == 3

    def test_mean_gradient_is_average(self):
        _, leak = run_cycle([], steps=2)
        manual = np.mean(leak.gradients[0]["weight"], axis=0)
        np.testing.assert_allclose(leak.mean_gradients()[0]["weight"], manual)


class TestFlaw1WeightDiffing:
    def test_diff_equals_summed_step_gradients(self):
        """The paper's formula (2): dW = (W_t - W_{t+1}) / lambda."""
        _, leak = run_cycle([], steps=3, lr=0.4)
        diffs = leak.weight_diff_gradients(lr=0.4)
        summed = sum(leak.gradients[0]["weight"])
        np.testing.assert_allclose(diffs[0]["weight"], summed, atol=1e-10)

    def test_protected_layers_yield_none(self):
        _, leak = run_cycle([2])
        diffs = leak.weight_diff_gradients(lr=0.4)
        assert diffs[1] is None
        assert diffs[0] is not None

    def test_nonpositive_lr_rejected(self):
        _, leak = run_cycle([])
        with pytest.raises(ValueError):
            leak.weight_diff_gradients(lr=0)


class TestViews:
    def test_visible_layers(self):
        _, leak = run_cycle([1, 3])
        assert leak.visible_layers() == {2}

    def test_feature_vector_excludes_protected(self):
        _, full = run_cycle([])
        _, partial = run_cycle([2])
        assert partial.feature_vector().size < full.feature_vector().size

    def test_feature_vector_empty_when_all_protected(self):
        _, leak = run_cycle([1, 2, 3])
        assert leak.feature_vector().size == 0

    def test_feature_vector_bias_toggle(self):
        _, leak = run_cycle([])
        with_bias = leak.feature_vector(include_bias=True)
        without = leak.feature_vector(include_bias=False)
        assert with_bias.size > without.size
