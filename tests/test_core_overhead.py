"""Tests for the overhead-row helpers (Table 6 row builders)."""

import pytest

from repro.core import (
    DynamicPolicy,
    NoProtection,
    StaticPolicy,
    dynamic_overhead,
    policy_overhead,
    static_overhead,
)
from repro.nn import lenet5
from repro.tee import CostModel


@pytest.fixture(scope="module")
def model():
    return lenet5()


class TestStaticOverhead:
    def test_baseline_has_zero_overhead(self, model):
        row = static_overhead(model, ())
        assert row.overhead_percent == pytest.approx(0.0)
        assert row.label == "baseline"

    def test_label_from_layers(self, model):
        assert static_overhead(model, (2, 5)).label == "L2+L5"

    def test_overhead_positive_for_protection(self, model):
        assert static_overhead(model, (2,)).overhead_percent > 0

    def test_format_contains_components(self, model):
        text = static_overhead(model, (5,)).format()
        assert "user=" in text and "kernel=" in text and "alloc=" in text
        assert "MiB" in text


class TestDynamicOverhead:
    def test_returns_average_and_windows(self, model):
        policy = DynamicPolicy(5, 2, [0.25] * 4, seed=0)
        avg, rows = dynamic_overhead(model, policy)
        assert avg.average
        assert len(rows) == 4

    def test_average_time_between_window_extremes(self, model):
        policy = DynamicPolicy(5, 2, [0.25] * 4, seed=0)
        avg, rows = dynamic_overhead(model, policy)
        times = [r.cost.total_seconds for r in rows]
        assert min(times) <= avg.cost.total_seconds <= max(times)

    def test_average_memory_is_worst_window(self, model):
        policy = DynamicPolicy(5, 2, [0.25] * 4, seed=0)
        avg, rows = dynamic_overhead(model, policy)
        assert avg.cost.tee_memory_bytes == max(r.cost.tee_memory_bytes for r in rows)


class TestPolicyOverhead:
    def test_dispatches_on_policy_type(self, model):
        cost_model = CostModel()
        static = policy_overhead(model, StaticPolicy(5, [2, 5]), cost_model)
        dynamic = policy_overhead(
            model, DynamicPolicy(5, 2, [0.25] * 4, seed=0), cost_model
        )
        none = policy_overhead(model, NoProtection(5), cost_model)
        assert "static" in static.label
        assert "dynamic" in dynamic.label
        assert none.overhead_percent == pytest.approx(0.0)
        assert dynamic.average
