"""Tests for the protection-policy planner."""

import pytest

from repro.core import DynamicPolicy, StaticPolicy
from repro.core.planner import KNOWN_ATTACKS, PolicyPlanner
from repro.nn import alexnet, lenet5, mlp
from repro.tee import CostModel, SecureMemoryExhausted


@pytest.fixture(scope="module")
def planner():
    return PolicyPlanner(lenet5(), CostModel(batch_size=32))


class TestStructuralAnalysis:
    def test_conv_head(self, planner):
        assert planner.conv_head_layers(2) == [1, 2]

    def test_dense_tail(self, planner):
        assert planner.dense_tail_layers(1) == [5]

    def test_alexnet_tail(self):
        planner = PolicyPlanner(alexnet())
        assert planner.dense_tail_layers(3) == [6, 7, 8]

    def test_mlp_has_no_conv(self):
        planner = PolicyPlanner(mlp(3, (4,), hidden=(5,)))
        with pytest.raises(ValueError, match="convolutional"):
            planner.conv_head_layers()


class TestRecommendations:
    def test_dria_protects_conv_head(self, planner):
        rec = planner.recommend(["dria"])
        assert isinstance(rec.policy, StaticPolicy)
        assert rec.policy.layers_for_cycle(0) == {1, 2}

    def test_mia_protects_dense_tail(self, planner):
        rec = planner.recommend(["mia"])
        assert rec.policy.layers_for_cycle(0) == {5}

    def test_dria_plus_mia_is_non_successive(self, planner):
        rec = planner.recommend(["dria", "mia"])
        layers = rec.policy.layers_for_cycle(0)
        assert 1 in layers and 5 in layers
        assert len(rec.policy.slices) == 2  # the DarkneTZ-impossible shape

    def test_dpia_yields_dynamic_policy_with_paper_vector(self, planner):
        rec = planner.recommend(["dpia"])
        assert isinstance(rec.policy, DynamicPolicy)
        assert rec.policy.size_mw == 2
        assert tuple(rec.policy.v_mw) == (0.2, 0.1, 0.6, 0.1)
        assert not rec.search_recommended

    def test_dpia_on_other_depths_recommends_search(self):
        deeper = mlp(4, (10,), hidden=(16, 16, 16, 16, 16))  # 6 layers
        planner = PolicyPlanner(deeper, CostModel(batch_size=8))
        rec = planner.recommend(["dpia"])
        assert rec.search_recommended
        assert len(rec.policy.v_mw) == 5  # uniform fallback over 5 positions

    def test_cost_attached(self, planner):
        rec = planner.recommend(["dria", "mia"])
        assert rec.cost.total_seconds > 0
        assert rec.cost.tee_memory_bytes > 0

    def test_unknown_attack_rejected(self, planner):
        with pytest.raises(ValueError, match="unknown attacks"):
            planner.recommend(["sidechannel"])

    def test_empty_attack_list_rejected(self, planner):
        with pytest.raises(ValueError, match="no attacks"):
            planner.recommend([])

    def test_budget_enforced(self):
        tight = PolicyPlanner(lenet5(), CostModel(batch_size=256))
        with pytest.raises(SecureMemoryExhausted):
            tight.recommend(["dria"])

    def test_format_mentions_cost(self, planner):
        text = planner.recommend(["mia"]).format()
        assert "MiB" in text and "s/cycle" in text

    def test_known_attacks_constant(self):
        assert set(KNOWN_ATTACKS) == {"dria", "mia", "dpia"}
