"""Tests for protection policies (static / dynamic / DarkneTZ baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DarknetzPolicy,
    DynamicPolicy,
    NoProtection,
    PolicyError,
    StaticPolicy,
    contiguous_slices,
)

settings.register_profile("ci", max_examples=30, deadline=None)
settings.load_profile("ci")


class TestContiguousSlices:
    def test_empty(self):
        assert contiguous_slices([]) == []

    def test_single_run(self):
        assert contiguous_slices([2, 3, 4]) == [(2, 4)]

    def test_two_runs(self):
        assert contiguous_slices([1, 2, 5]) == [(1, 2), (5, 5)]

    def test_unsorted_input(self):
        assert contiguous_slices([5, 1, 2]) == [(1, 2), (5, 5)]

    def test_duplicates_collapsed(self):
        assert contiguous_slices([3, 3, 4]) == [(3, 4)]


class TestStaticPolicy:
    def test_same_layers_every_cycle(self):
        policy = StaticPolicy(5, [2, 5])
        assert policy.layers_for_cycle(0) == policy.layers_for_cycle(99) == {2, 5}

    def test_non_contiguous_two_slices_allowed(self):
        StaticPolicy(5, [1, 2, 4, 5])  # two slices — the GradSec feature

    def test_three_slices_rejected_by_default(self):
        with pytest.raises(PolicyError, match="slices"):
            StaticPolicy(7, [1, 3, 5])

    def test_max_slices_none_lifts_restriction(self):
        StaticPolicy(7, [1, 3, 5], max_slices=None)

    def test_out_of_range_rejected(self):
        with pytest.raises(PolicyError, match="outside"):
            StaticPolicy(5, [6])

    def test_describe_lists_layers(self):
        assert "L2+L5" in StaticPolicy(5, [2, 5]).describe()

    def test_empty_set_is_valid(self):
        assert StaticPolicy(5, []).layers_for_cycle(0) == frozenset()


class TestDarknetzPolicy:
    def test_contiguous_accepted(self):
        policy = DarknetzPolicy(5, [2, 3, 4, 5])
        assert policy.layers_for_cycle(0) == {2, 3, 4, 5}

    def test_non_contiguous_rejected(self):
        """The exact capability gap Table 1 quantifies."""
        with pytest.raises(PolicyError, match="successive"):
            DarknetzPolicy(5, [2, 5])

    def test_single_layer_accepted(self):
        DarknetzPolicy(5, [3])


class TestDynamicPolicy:
    def make(self, v=(0.2, 0.1, 0.6, 0.1), size=2, seed=0):
        return DynamicPolicy(5, size, v, seed=seed)

    def test_window_count(self):
        assert len(self.make().windows) == 4  # n - size + 1

    def test_windows_are_consecutive(self):
        for window in self.make(size=3, v=(0.5, 0.3, 0.2)).windows:
            assert list(window) == list(range(window[0], window[0] + 3))

    def test_v_mw_length_checked(self):
        with pytest.raises(PolicyError, match="entries"):
            DynamicPolicy(5, 2, [0.5, 0.5])

    def test_v_mw_must_sum_to_one(self):
        with pytest.raises(PolicyError, match="sum to 1"):
            DynamicPolicy(5, 2, [0.3, 0.3, 0.3, 0.3])

    def test_negative_probability_rejected(self):
        with pytest.raises(PolicyError):
            DynamicPolicy(5, 2, [-0.1, 0.5, 0.5, 0.1])

    def test_size_bounds(self):
        with pytest.raises(PolicyError, match="size_mw"):
            DynamicPolicy(5, 6, [1.0])

    def test_deterministic_per_cycle(self):
        a, b = self.make(seed=7), self.make(seed=7)
        for cycle in range(20):
            assert a.layers_for_cycle(cycle) == b.layers_for_cycle(cycle)

    def test_empirical_distribution_matches_v_mw(self):
        policy = self.make(seed=1)
        counts = np.zeros(4)
        n = 4000
        for cycle in range(n):
            window = policy.window_for_cycle(cycle)
            counts[window[0] - 1] += 1
        np.testing.assert_allclose(counts / n, [0.2, 0.1, 0.6, 0.1], atol=0.03)

    def test_expected_protection_per_layer(self):
        expected = self.make().expected_protection()
        np.testing.assert_allclose(expected, [0.2, 0.3, 0.7, 0.7, 0.1])

    def test_all_possible_sets_skips_zero_probability(self):
        policy = DynamicPolicy(5, 2, [0.5, 0.0, 0.5, 0.0])
        assert len(policy.all_possible_sets()) == 2

    @given(st.integers(2, 8), st.integers(1, 4), st.integers(0, 100))
    def test_windows_always_inside_model(self, n, size, seed):
        size = min(size, n)
        positions = n - size + 1
        v = np.full(positions, 1.0 / positions)
        policy = DynamicPolicy(n, size, v, seed=seed)
        for cycle in range(10):
            layers = policy.layers_for_cycle(cycle)
            assert len(layers) == size
            assert all(1 <= i <= n for i in layers)


class TestNoProtection:
    def test_always_empty(self):
        policy = NoProtection(5)
        assert policy.layers_for_cycle(3) == frozenset()
        assert policy.all_possible_sets() == [frozenset()]
