"""Structured protection-policy addressing (LayerRef / BlockSelector).

Covers the redesigned selector surface: canonical refs, block selectors,
``block.role`` strings, the legacy integer-index shim (deprecation + exact
schedule equivalence), structured slice envelopes, and the spec-string
parser used by the CLI.
"""

import warnings

import numpy as np
import pytest

from repro.core.policy import (
    BlockSelector,
    DynamicPolicy,
    LayerRef,
    ModelLayout,
    NoProtection,
    PeltaPolicy,
    PolicyError,
    StaticPolicy,
    flat_layout,
    policy_from_spec,
    structured_slices,
)
from repro.nn import lenet5, vit_tiny


@pytest.fixture(scope="module")
def vit_layout():
    return vit_tiny(num_classes=10, seed=0).layout()


class TestModelLayout:
    def test_of_model_reads_blocks_and_roles(self, vit_layout):
        assert vit_layout.num_layers == 15
        assert vit_layout.block_names() == ["block1", "block2"]
        ref = vit_layout.ref(4)
        assert ref.name == "block1.softmax"
        assert ref.block == "block1"
        assert ref.role == "softmax"

    def test_flat_layout_has_no_blocks(self):
        layout = flat_layout(5)
        assert layout.block_names() == []
        assert [r.name for r in layout] == ["L1", "L2", "L3", "L4", "L5"]

    def test_resolve_name_block_and_role(self, vit_layout):
        assert [r.index for r in vit_layout.resolve("block2.softmax")] == [10]
        assert [r.index for r in vit_layout.resolve("block1")] == [2, 3, 4, 5, 6, 7]
        sel = BlockSelector("block2", roles=("ln1", "ln2"))
        assert [r.index for r in vit_layout.resolve(sel)] == [8, 12]

    def test_resolve_unknown_selector_raises(self, vit_layout):
        with pytest.raises(PolicyError):
            vit_layout.resolve("block9.softmax")
        with pytest.raises(PolicyError):
            vit_layout.resolve(BlockSelector("block1", roles=("conv",)))

    def test_resolve_out_of_range_index(self, vit_layout):
        with pytest.raises(PolicyError, match="outside"):
            vit_layout.resolve(99)


class TestLegacyIntShim:
    """Raw integer indices keep working, warn, and schedule identically."""

    def test_static_int_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="LayerRef"):
            StaticPolicy(5, [2, 5])

    def test_named_construction_does_not_warn(self, vit_layout):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            StaticPolicy(vit_layout, ["block1.softmax"])
            PeltaPolicy(vit_layout)
            NoProtection(vit_layout)

    def test_static_schedules_bitwise_identical(self, vit_layout):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = StaticPolicy(vit_layout, [4, 6], max_slices=None)
        named = StaticPolicy(
            vit_layout, ["block1.softmax", "block1.ln2"], max_slices=None
        )
        for cycle in range(8):
            assert legacy.layers_for_cycle(cycle) == named.layers_for_cycle(cycle)
        assert legacy.all_possible_sets() == named.all_possible_sets()
        assert legacy.describe() == named.describe()

    def test_dynamic_layout_vs_int_bitwise_identical(self):
        v_mw = (0.2, 0.1, 0.6, 0.1)
        a = DynamicPolicy(5, 2, v_mw, seed=3)
        b = DynamicPolicy(flat_layout(5), 2, v_mw, seed=3)
        draws_a = [a.layers_for_cycle(c) for c in range(64)]
        draws_b = [b.layers_for_cycle(c) for c in range(64)]
        assert draws_a == draws_b


class TestStructuredSlices:
    def test_flat_refs_reduce_to_contiguous_runs(self):
        layout = flat_layout(6)
        refs = [layout.ref(i) for i in (1, 2, 4)]
        units = structured_slices(refs)
        assert [[r.index for r in unit] for unit in units] == [[1, 2], [4]]

    def test_block_is_one_unit_even_when_non_adjacent(self, vit_layout):
        # ln1 (2) and ln2 (6) of block1 are flat-non-adjacent but one unit.
        refs = [vit_layout.ref(2), vit_layout.ref(6)]
        assert len(structured_slices(refs)) == 1

    def test_adjacent_blocks_are_two_units(self, vit_layout):
        # L7 (block1.mlp) and L8 (block2.ln1) are flat-adjacent but belong
        # to different blocks: the envelope must count two slices.
        refs = [vit_layout.ref(7), vit_layout.ref(8)]
        assert len(structured_slices(refs)) == 2


class TestStaticEnvelope:
    def test_two_blocks_fit_default_envelope(self, vit_layout):
        policy = StaticPolicy(vit_layout, ["block1.mlp", "block2.ln1"])
        assert policy.layers_for_cycle(0) == frozenset({7, 8})

    def test_three_units_rejected(self, vit_layout):
        with pytest.raises(PolicyError, match="slices"):
            StaticPolicy(
                vit_layout, ["embed", "block1.softmax", "block2.softmax"]
            )

    def test_conv_zoo_envelope_unchanged(self):
        """Regression: flat conv models keep the paper's 2-slice rule."""
        layout = lenet5().layout()
        StaticPolicy(layout, ["L2", "L5"])  # 2 slices: fine
        with pytest.raises(PolicyError, match="slices"):
            StaticPolicy(layout, ["L1", "L3", "L5"])


class TestPeltaPolicy:
    def test_default_roles_static(self, vit_layout):
        policy = PeltaPolicy(vit_layout)
        assert policy.layers_for_cycle(0) == frozenset({2, 4, 6, 8, 10, 12})
        assert policy.layers_for_cycle(7) == policy.layers_for_cycle(0)

    def test_single_block_by_name_or_position(self, vit_layout):
        by_name = PeltaPolicy(vit_layout, blocks=["block2"])
        by_pos = PeltaPolicy(vit_layout, blocks=[2])
        assert by_name.layers_for_cycle(0) == by_pos.layers_for_cycle(0)
        assert by_name.layers_for_cycle(0) == frozenset({8, 10, 12})

    def test_moving_window_draw_matches_dynamic_scheme(self, vit_layout):
        policy = PeltaPolicy(vit_layout, size_mw=1, v_mw=(0.5, 0.5), seed=7)
        expected_sets = [frozenset({2, 4, 6}), frozenset({8, 10, 12})]
        for cycle in range(32):
            drawn = policy.layers_for_cycle(cycle)
            assert drawn in expected_sets
            # Same (seed, cycle) keying as DynamicPolicy: redrawing is stable.
            assert drawn == policy.layers_for_cycle(cycle)
        assert sorted(policy.all_possible_sets(), key=sorted) == expected_sets

    def test_expected_protection_sums_window_probs(self, vit_layout):
        policy = PeltaPolicy(vit_layout, size_mw=1, v_mw=(0.25, 0.75), seed=0)
        probs = policy.expected_protection()
        assert probs[1] == pytest.approx(0.25)  # block1.ln1 (index 2)
        assert probs[9] == pytest.approx(0.75)  # block2.softmax (index 10)
        assert probs[0] == 0.0  # embed never protected

    def test_modes_are_exclusive(self, vit_layout):
        with pytest.raises(PolicyError, match="mutually exclusive"):
            PeltaPolicy(vit_layout, blocks=["block1"], v_mw=(0.5, 0.5))
        with pytest.raises(PolicyError, match="size_mw without v_mw"):
            PeltaPolicy(vit_layout, size_mw=1)

    def test_needs_named_blocks(self):
        with pytest.raises(PolicyError, match="named blocks"):
            PeltaPolicy(flat_layout(5))


class TestPolicyFromSpec:
    def test_specs_resolve(self, vit_layout):
        cases = {
            "none": frozenset(),
            "static:block2.softmax+block2.ln2": frozenset({10, 12}),
            "pelta": frozenset({2, 4, 6, 8, 10, 12}),
            "pelta:block1": frozenset({2, 4, 6}),
        }
        for spec, expected in cases.items():
            assert policy_from_spec(spec, vit_layout).layers_for_cycle(0) == expected

    def test_mw_specs_are_seeded(self, vit_layout):
        a = policy_from_spec("pelta-mw:1", vit_layout, seed=5)
        b = policy_from_spec("pelta-mw:1", vit_layout, seed=5)
        assert [a.layers_for_cycle(c) for c in range(16)] == [
            b.layers_for_cycle(c) for c in range(16)
        ]

    def test_accepts_model_and_depth(self):
        model = lenet5()
        assert policy_from_spec("mw:2", model, seed=1).num_layers == 5
        assert policy_from_spec("none", 5).num_layers == 5

    def test_unknown_spec_rejected(self, vit_layout):
        with pytest.raises(PolicyError, match="unknown policy spec"):
            policy_from_spec("bogus:1", vit_layout)
