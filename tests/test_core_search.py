"""Tests for the V_MW search procedure."""

import numpy as np
import pytest

from repro.core import candidate_distributions, search_v_mw


class TestCandidates:
    def test_all_valid_distributions(self):
        for v in candidate_distributions(4, random_candidates=5):
            assert len(v) == 4
            assert all(p >= 0 for p in v)
            assert sum(v) == pytest.approx(1.0)

    def test_includes_uniform(self):
        candidates = candidate_distributions(4)
        assert any(np.allclose(v, 0.25) for v in candidates)

    def test_includes_skewed_corners(self):
        candidates = candidate_distributions(3, random_candidates=0)
        assert any(max(v) > 0.8 for v in candidates)

    def test_rejects_nonpositive_positions(self):
        with pytest.raises(ValueError):
            candidate_distributions(0)


class TestSearch:
    def test_picks_minimum_score(self):
        candidates = [(1.0, 0.0), (0.0, 1.0), (0.5, 0.5)]
        scores = {(1.0, 0.0): 0.9, (0.0, 1.0): 0.6, (0.5, 0.5): 0.75}
        result = search_v_mw(candidates, lambda v: scores[v])
        assert result.best_v_mw == (0.0, 1.0)
        assert result.best_score == 0.6

    def test_records_all_scores(self):
        result = search_v_mw([(1.0,), (1.0,)], lambda v: 0.5)
        assert len(result.scores) == 2

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            search_v_mw([], lambda v: 0.5)

    def test_evaluate_called_with_tuples(self):
        seen = []

        def evaluate(v):
            seen.append(v)
            return 0.5

        search_v_mw([[0.3, 0.7]], evaluate)
        assert seen == [(0.3, 0.7)]
