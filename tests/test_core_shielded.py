"""Tests for the shielded (enclave-partitioned) trainer — GradSec itself."""

import numpy as np
import pytest

from repro.core import (
    DynamicPolicy,
    NoProtection,
    ShieldedModel,
    StaticPolicy,
)
from repro.nn import lenet5, mlp, one_hot
from repro.tee import (
    CostModel,
    SecureMemoryExhausted,
    SecureMemoryPool,
    TrustedIOPath,
)


def tiny_batch(rng, n=6, classes=4):
    x = rng.normal(size=(n, 6))
    y = one_hot(rng.integers(0, classes, n), classes)
    return x, y


def make_shielded(policy=None, seed=0, **kwargs):
    model = mlp(num_classes=4, input_shape=(6,), hidden=(8, 5), seed=seed)
    return model, ShieldedModel(model, policy or NoProtection(3), batch_size=6, **kwargs)


class TestEquivalence:
    """Protected training must compute exactly what unprotected does."""

    @pytest.mark.parametrize("protected", [(1,), (2,), (3,), (1, 3), (2, 3), (1, 2, 3)])
    def test_trajectory_identical_to_unprotected(self, rng, protected):
        x, y = tiny_batch(rng)
        ref_model, ref = make_shielded(NoProtection(3), seed=1)
        ref.begin_cycle()
        ref_losses = [ref.train_step(x, y, lr=0.3) for _ in range(3)]
        ref.end_cycle()

        model, shielded = make_shielded(
            StaticPolicy(3, protected, max_slices=None), seed=1
        )
        shielded.begin_cycle()
        losses = [shielded.train_step(x, y, lr=0.3) for _ in range(3)]
        shielded.end_cycle()

        np.testing.assert_allclose(losses, ref_losses, rtol=1e-12)
        for i in range(1, 4):
            for key, value in ref_model.layer(i).get_weights().items():
                np.testing.assert_allclose(
                    model.layer(i).get_weights()[key], value, rtol=1e-12
                )

    def test_lenet_equivalence_with_nonconsecutive_protection(self, rng):
        x = rng.normal(size=(4, 3, 32, 32))
        y = one_hot(rng.integers(0, 5, 4), 5)
        ref = lenet5(num_classes=5, seed=2, scale=0.5)
        sm_ref = ShieldedModel(ref, NoProtection(5), batch_size=4)
        sm_ref.begin_cycle()
        loss_ref = sm_ref.train_step(x, y, lr=0.2)
        sm_ref.end_cycle()

        model = lenet5(num_classes=5, seed=2, scale=0.5)
        sm = ShieldedModel(model, StaticPolicy(5, [2, 5]), batch_size=4)
        sm.begin_cycle()
        loss = sm.train_step(x, y, lr=0.2)
        sm.end_cycle()
        assert loss == pytest.approx(loss_ref, rel=1e-12)


class TestConfidentiality:
    def test_normal_world_weights_scrubbed_during_cycle(self, rng):
        model, shielded = make_shielded(StaticPolicy(3, [2]))
        original = model.layer(2).get_weights()["weight"].copy()
        shielded.begin_cycle()
        assert np.all(model.layer(2).params["weight"].data == 0)
        shielded.end_cycle()
        # Restored (and untrained, so identical).
        np.testing.assert_array_equal(
            model.layer(2).get_weights()["weight"], original
        )

    def test_end_cycle_without_restore_keeps_scrubbed(self):
        model, shielded = make_shielded(StaticPolicy(3, [2]))
        shielded.begin_cycle()
        shielded.end_cycle(restore=False)
        assert np.all(model.layer(2).params["weight"].data == 0)

    def test_leakage_never_contains_protected_gradients(self, rng):
        x, y = tiny_batch(rng)
        _, shielded = make_shielded(StaticPolicy(3, [1, 3]))
        shielded.begin_cycle()
        shielded.train_step(x, y)
        leak = shielded.end_cycle()
        grads = leak.mean_gradients()
        assert grads[0] is None
        assert grads[2] is None
        assert grads[1] is not None

    def test_weight_diffs_hidden_for_protected(self, rng):
        x, y = tiny_batch(rng)
        _, shielded = make_shielded(StaticPolicy(3, [2]))
        shielded.begin_cycle()
        shielded.train_step(x, y, lr=0.5)
        leak = shielded.end_cycle()
        diffs = leak.weight_diff_gradients(lr=0.5)
        assert diffs[1] is None
        assert diffs[0] is not None

    def test_smc_calls_happen_only_when_protected(self, rng):
        x, y = tiny_batch(rng)
        _, unprotected = make_shielded(NoProtection(3))
        unprotected.begin_cycle()
        unprotected.train_step(x, y)
        unprotected.end_cycle()
        assert unprotected.monitor.stats.calls == 0

        _, shielded = make_shielded(StaticPolicy(3, [2]))
        shielded.begin_cycle()
        shielded.train_step(x, y)
        shielded.end_cycle()
        # protect + forward + backward + release
        assert shielded.monitor.stats.calls == 4


class TestMemoryAccounting:
    def test_peak_memory_recorded(self, rng):
        x, y = tiny_batch(rng)
        _, shielded = make_shielded(StaticPolicy(3, [2]))
        shielded.begin_cycle()
        shielded.train_step(x, y)
        leak = shielded.end_cycle()
        assert leak.peak_tee_bytes > 0

    def test_memory_released_after_cycle(self, rng):
        _, shielded = make_shielded(StaticPolicy(3, [1, 2, 3], max_slices=None))
        shielded.begin_cycle()
        assert shielded.pool.used_bytes > 0
        shielded.end_cycle()
        assert shielded.pool.used_bytes == 0

    def test_too_small_pool_raises(self):
        with pytest.raises(SecureMemoryExhausted):
            model, shielded = make_shielded(
                StaticPolicy(3, [1]), pool=SecureMemoryPool(64)
            )
            shielded.begin_cycle()

    def test_lenet_l2_l5_footprint_matches_cost_model(self, rng):
        model = lenet5(num_classes=100, seed=0)
        shielded = ShieldedModel(model, StaticPolicy(5, [2, 5]), batch_size=32)
        shielded.begin_cycle()
        expected = CostModel(batch_size=32).tee_memory_bytes(model, (2, 5))
        assert shielded.pool.used_bytes == expected
        shielded.end_cycle()


class TestDynamicCycles:
    def test_window_moves_across_cycles(self, rng):
        x, y = tiny_batch(rng)
        policy = DynamicPolicy(3, 1, [0.4, 0.3, 0.3], seed=5)
        _, shielded = make_shielded(policy)
        seen = set()
        for cycle in range(12):
            protected = shielded.begin_cycle()
            seen.add(tuple(sorted(protected)))
            shielded.train_step(x, y)
            shielded.end_cycle()
        assert len(seen) > 1  # the window actually moved

    def test_cycle_override_synchronises(self):
        policy = DynamicPolicy(3, 1, [0.4, 0.3, 0.3], seed=5)
        _, shielded = make_shielded(policy)
        expected = policy.layers_for_cycle(7)
        assert shielded.begin_cycle(cycle=7) == expected
        shielded.end_cycle()


class TestProtocolErrors:
    def test_double_begin_raises(self):
        _, shielded = make_shielded()
        shielded.begin_cycle()
        with pytest.raises(RuntimeError, match="begin_cycle"):
            shielded.begin_cycle()

    def test_train_outside_cycle_raises(self, rng):
        x, y = tiny_batch(rng)
        _, shielded = make_shielded()
        with pytest.raises(RuntimeError, match="outside"):
            shielded.train_step(x, y)

    def test_end_without_begin_raises(self):
        _, shielded = make_shielded()
        with pytest.raises(RuntimeError, match="without"):
            shielded.end_cycle()

    def test_policy_model_depth_mismatch(self):
        model = mlp(num_classes=4, input_shape=(6,), hidden=(8,), seed=0)
        with pytest.raises(ValueError, match="layers"):
            ShieldedModel(model, NoProtection(5))

    def test_sealed_weights_require_iopath(self):
        _, shielded = make_shielded(StaticPolicy(3, [1]))
        with pytest.raises(ValueError, match="iopath"):
            shielded.begin_cycle(sealed_weights=b"blob")


class TestExportUpdate:
    def test_export_splits_plain_and_sealed(self, rng):
        x, y = tiny_batch(rng)
        model, shielded = make_shielded(StaticPolicy(3, [2]))
        iopath = TrustedIOPath()
        shielded.begin_cycle()
        shielded.train_step(x, y, lr=0.3)
        sealed, plain = shielded.export_update(iopath)
        shielded.end_cycle(restore=False)
        assert plain[1] == {}  # protected slot empty in the plain part
        assert plain[0]  # unprotected layers present
        unsealed = iopath.unseal_remote(sealed)
        assert unsealed[1]  # protected layer's weights inside the sealed blob
        assert unsealed[0] == {}

    def test_sealed_update_reflects_training(self, rng):
        x, y = tiny_batch(rng)
        model, shielded = make_shielded(StaticPolicy(3, [2]), seed=4)
        before = model.layer(2).get_weights()["weight"].copy()
        iopath = TrustedIOPath()
        shielded.begin_cycle()
        shielded.train_step(x, y, lr=0.5)
        sealed, _ = shielded.export_update(iopath)
        shielded.end_cycle(restore=False)
        after = iopath.unseal_remote(sealed)[1]["weight"]
        assert not np.allclose(after, before)

    def test_export_outside_cycle_raises(self):
        _, shielded = make_shielded(StaticPolicy(3, [2]))
        with pytest.raises(RuntimeError, match="outside"):
            shielded.export_update(TrustedIOPath())


class TestProvisioning:
    def test_begin_cycle_with_sealed_weights(self, rng):
        x, y = tiny_batch(rng)
        model, shielded = make_shielded(StaticPolicy(3, [2]), seed=6)
        iopath = TrustedIOPath()
        fresh = np.full_like(model.layer(2).get_weights()["weight"], 0.123)
        sealed = iopath.seal([{}, {"weight": fresh, "bias": np.zeros(5)}, {}])
        shielded.begin_cycle(sealed_weights=sealed, iopath=iopath)
        shielded.train_step(x, y, lr=0.0)  # lr=0: no weight change
        out, _ = shielded.export_update(iopath)
        shielded.end_cycle(restore=False)
        np.testing.assert_allclose(iopath.unseal_remote(out)[1]["weight"], fresh)
