"""Property-based tests of the shielded trainer's core invariants.

For ANY protected set, shielded training must (a) compute exactly what
unprotected training computes and (b) leak exactly the complement of the
protected set. These are the two properties everything else rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import NoProtection, ShieldedModel, StaticPolicy
from repro.nn import mlp, one_hot

pytestmark = pytest.mark.property

settings.register_profile("shielded", max_examples=12, deadline=None)
settings.load_profile("shielded")

LAYERS = 4


def build(protected, seed):
    model = mlp(num_classes=3, input_shape=(5,), hidden=(6, 5, 4), seed=seed)
    policy = (
        StaticPolicy(LAYERS, sorted(protected), max_slices=None)
        if protected
        else NoProtection(LAYERS)
    )
    return model, ShieldedModel(model, policy, batch_size=4)


def batch(seed):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(4, 5)), one_hot(rng.integers(0, 3, 4), 3)


protected_sets = st.sets(st.integers(1, LAYERS), max_size=LAYERS)


@given(protected_sets, st.integers(0, 10))
def test_trajectory_equals_unprotected(protected, seed):
    x, y = batch(seed)
    ref_model, ref = build(set(), seed)
    ref.begin_cycle()
    ref_loss = ref.train_step(x, y, lr=0.3)
    ref.end_cycle()

    model, shielded = build(protected, seed)
    shielded.begin_cycle()
    loss = shielded.train_step(x, y, lr=0.3)
    shielded.end_cycle()

    assert loss == pytest.approx(ref_loss, rel=1e-12)
    for index in range(1, LAYERS + 1):
        ref_weights = ref_model.layer(index).get_weights()
        got = model.layer(index).get_weights()
        for key in ref_weights:
            np.testing.assert_allclose(got[key], ref_weights[key], rtol=1e-12)


@given(protected_sets, st.integers(0, 10))
def test_leakage_is_exact_complement(protected, seed):
    x, y = batch(seed)
    _, shielded = build(protected, seed)
    shielded.begin_cycle()
    shielded.train_step(x, y, lr=0.2)
    leak = shielded.end_cycle()
    for index, grads in enumerate(leak.mean_gradients(), start=1):
        if index in protected:
            assert grads is None
        else:
            assert grads is not None


@given(protected_sets)
def test_pool_returns_to_zero(protected):
    _, shielded = build(protected, 0)
    shielded.begin_cycle()
    shielded.end_cycle()
    assert shielded.pool.used_bytes == 0
