"""Shielded execution of transformer models (tuple activation streams).

Attention sublayers pass residual streams as tuples between layers; the
enclave boundary must marshal every stream across world switches without
changing a single bit of the training computation, and the runtime pool
peak must equal both the compile-time plan and the cost model.
"""

import numpy as np
import pytest

from repro.core.policy import NoProtection, PeltaPolicy, StaticPolicy
from repro.core.shielded import ShieldedModel
from repro.graph.planner import plan_protection
from repro.nn import gpt_tiny, one_hot, vit_tiny
from repro.tee import CostModel

BATCH = 4
LR = 0.05


def _batch(model, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((BATCH, *model.input_shape))
    y = one_hot(
        rng.integers(0, model.output_shape[-1], size=BATCH), model.output_shape[-1]
    )
    return x, y


def _train_plain(model, x, y, cycles):
    for _ in range(cycles):
        _, grads = model.loss_and_gradients(x, y)
        for layer, g in zip(model.layers, grads):
            for key, grad_t in g.items():
                layer.params[key].data -= LR * grad_t.data
    return model.get_weights()


def _train_shielded(model, policy, x, y, cycles):
    shielded = ShieldedModel(model, policy, batch_size=BATCH)
    for cycle in range(cycles):
        shielded.begin_cycle(cycle=cycle)
        shielded.train_step(x, y, lr=LR)
        shielded.end_cycle()
    return shielded, model.get_weights()


def _assert_weights_equal(a, b):
    for wa, wb in zip(a, b):
        assert set(wa) == set(wb)
        for key in wa:
            np.testing.assert_array_equal(wa[key], wb[key])


POLICY_BUILDERS = {
    "mid-block-static": lambda layout: StaticPolicy(
        layout, ["block1.softmax", "block1.ln2"]
    ),
    "pelta-static": lambda layout: PeltaPolicy(layout),
    "pelta-mw": lambda layout: PeltaPolicy(
        layout, size_mw=1, v_mw=(0.5, 0.5), seed=7
    ),
    "boundary-spanning": lambda layout: StaticPolicy(
        layout, ["block1.mlp", "block2.ln1"]
    ),
}


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("factory", [vit_tiny, gpt_tiny])
    @pytest.mark.parametrize("name", sorted(POLICY_BUILDERS))
    def test_shielded_training_matches_unshielded(self, factory, name):
        plain = factory(num_classes=6, seed=11)
        shadow = factory(num_classes=6, seed=11)
        x, y = _batch(plain, seed=3)
        reference = _train_plain(plain, x, y, cycles=3)
        policy = POLICY_BUILDERS[name](shadow.layout())
        _, shielded_weights = _train_shielded(shadow, policy, x, y, cycles=3)
        _assert_weights_equal(reference, shielded_weights)

    def test_no_protection_matches_too(self):
        plain = vit_tiny(num_classes=6, seed=5)
        shadow = vit_tiny(num_classes=6, seed=5)
        x, y = _batch(plain, seed=1)
        reference = _train_plain(plain, x, y, cycles=2)
        _, shielded_weights = _train_shielded(
            shadow, NoProtection(shadow.layout()), x, y, cycles=2
        )
        _assert_weights_equal(reference, shielded_weights)


class TestPoolPeakInvariant:
    @pytest.mark.parametrize("factory", [vit_tiny, gpt_tiny])
    @pytest.mark.parametrize("name", sorted(POLICY_BUILDERS))
    def test_runtime_peak_equals_plan_and_cost_model(self, factory, name):
        model = factory(num_classes=6, seed=11)
        policy = POLICY_BUILDERS[name](model.layout())
        x, y = _batch(model, seed=3)
        shielded, _ = _train_shielded(model, policy, x, y, cycles=2)
        cost_model = CostModel(batch_size=BATCH)
        for cycle, record in enumerate(shielded.history):
            protected = policy.layers_for_cycle(cycle)
            plan = plan_protection(model, protected, batch_size=BATCH)
            expected = cost_model.tee_memory_bytes(model, protected)
            assert record.peak_tee_bytes == plan.peak_bytes == expected


class TestLeakageView:
    def test_unprotected_sublayers_leak_protected_do_not(self):
        model = vit_tiny(num_classes=6, seed=11)
        policy = PeltaPolicy(model.layout())
        x, y = _batch(model, seed=3)
        shielded, _ = _train_shielded(model, policy, x, y, cycles=1)
        record = shielded.history[0]
        protected = policy.layers_for_cycle(0)
        assert record.visible_layers().isdisjoint(protected)
        # every parameterised unprotected layer's gradients are visible;
        # protected sublayers recorded nothing
        for index in range(1, model.num_layers + 1):
            recorded = record.gradients[index - 1]
            if index in protected:
                assert not recorded
            elif model.layer(index).params:
                assert set(recorded) == set(model.layer(index).params)
