"""Tests for datasets, batching and the synthetic generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    ArrayDataset,
    class_prototypes,
    flatten_samples,
    image_loss,
    normalize,
    synthetic_cifar,
    synthetic_lfw,
)

settings.register_profile("ci", max_examples=20, deadline=None)
settings.load_profile("ci")


class TestArrayDataset:
    def test_length_and_shape(self, small_dataset):
        assert len(small_dataset) == 64
        assert small_dataset.sample_shape == (3, 32, 32)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="samples"):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4), 2)

    def test_one_hot_width(self, small_dataset):
        assert small_dataset.one_hot_labels().shape == (64, 5)

    def test_subset_copies(self, small_dataset):
        sub = small_dataset.subset([0, 1])
        sub.x[:] = -1
        assert not np.any(small_dataset.x[0] == -1)

    def test_split_fractions(self, small_dataset):
        a, b = small_dataset.split(0.75)
        assert len(a) == 48
        assert len(b) == 16

    def test_split_rejects_bad_fraction(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.split(1.5)

    def test_split_is_partition(self, small_dataset):
        a, b = small_dataset.split(0.5, rng=np.random.default_rng(1))
        combined = np.concatenate([a.x, b.x])
        assert combined.shape[0] == len(small_dataset)

    def test_shard_covers_everything(self, small_dataset):
        shards = small_dataset.shard(3)
        assert sum(len(s) for s in shards) == len(small_dataset)

    def test_shard_rejects_nonpositive(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.shard(0)

    def test_batches_cover_dataset(self, small_dataset):
        total = sum(b.size for b in small_dataset.batches(10, shuffle=False))
        assert total == len(small_dataset)

    def test_batches_drop_last(self, small_dataset):
        sizes = [b.size for b in small_dataset.batches(10, drop_last=True)]
        assert all(s == 10 for s in sizes)

    def test_batches_shuffle_deterministic_per_rng(self, small_dataset):
        a = [b.x for b in small_dataset.batches(8, rng=np.random.default_rng(5))]
        b = [b.x for b in small_dataset.batches(8, rng=np.random.default_rng(5))]
        np.testing.assert_array_equal(a[0], b[0])

    def test_batch_rejects_nonpositive_size(self, small_dataset):
        with pytest.raises(ValueError):
            next(small_dataset.batches(0))

    def test_properties_follow_subset(self):
        ds = synthetic_lfw(num_samples=20, seed=0)
        sub = ds.subset([0, 5, 7])
        assert sub.properties.shape == (3,)


class TestSyntheticGenerators:
    def test_cifar_shapes_and_range(self):
        ds = synthetic_cifar(num_samples=10, num_classes=7, seed=0)
        assert ds.x.shape == (10, 3, 32, 32)
        assert ds.x.min() >= 0.0 and ds.x.max() <= 1.0
        assert ds.num_classes == 7

    def test_cifar_classes_are_separable(self):
        """Same-class samples are closer than cross-class ones on average."""
        ds = synthetic_cifar(num_samples=200, num_classes=4, noise=0.1, seed=0)
        protos = class_prototypes(4, (3, 32, 32), seed=0)
        own = np.array([np.linalg.norm(x - protos[y]) for x, y in zip(ds.x, ds.y)])
        other = np.array(
            [np.linalg.norm(x - protos[(y + 1) % 4]) for x, y in zip(ds.x, ds.y)]
        )
        assert own.mean() < other.mean()

    def test_cifar_deterministic(self):
        a = synthetic_cifar(num_samples=5, seed=3)
        b = synthetic_cifar(num_samples=5, seed=3)
        np.testing.assert_array_equal(a.x, b.x)

    def test_lfw_property_rate(self):
        ds = synthetic_lfw(num_samples=2000, property_rate=0.3, seed=0)
        assert ds.properties.mean() == pytest.approx(0.3, abs=0.05)

    def test_lfw_property_leaves_footprint(self):
        ds = synthetic_lfw(num_samples=800, seed=0, property_strength=0.5, noise=0.05)
        with_p = ds.x[ds.properties == 1].mean(axis=0)
        without = ds.x[ds.properties == 0].mean(axis=0)
        assert np.abs(with_p - without).max() > 0.05

    def test_lfw_sample_seed_changes_samples_not_world(self):
        a = synthetic_lfw(num_samples=50, seed=1, sample_seed=10)
        b = synthetic_lfw(num_samples=50, seed=1, sample_seed=20)
        assert not np.array_equal(a.x, b.x)

    def test_prototypes_deterministic(self):
        np.testing.assert_array_equal(
            class_prototypes(3, seed=5), class_prototypes(3, seed=5)
        )


class TestTransforms:
    def test_normalize_zero_mean_unit_std(self, rng):
        out = normalize(rng.normal(3.0, 2.0, size=1000))
        assert abs(out.mean()) < 1e-9
        assert out.std() == pytest.approx(1.0)

    def test_normalize_constant_input(self):
        out = normalize(np.full(5, 7.0))
        np.testing.assert_allclose(out, 0.0)

    def test_image_loss_is_euclidean(self):
        a = np.zeros((3, 2, 2))
        b = np.ones((3, 2, 2))
        assert image_loss(a, b) == pytest.approx(np.sqrt(12.0))

    def test_image_loss_shape_mismatch(self):
        with pytest.raises(ValueError):
            image_loss(np.zeros(3), np.zeros(4))

    def test_flatten_samples(self):
        assert flatten_samples(np.zeros((4, 3, 2, 2))).shape == (4, 12)

    @given(st.integers(0, 1000))
    def test_image_loss_nonnegative_and_zero_on_self(self, seed):
        x = np.random.default_rng(seed).normal(size=(3, 4, 4))
        assert image_loss(x, x) == 0.0
        y = x + 1.0
        assert image_loss(x, y) > 0.0
