"""Tests for update admission control and the reputation ledger."""

import numpy as np
import pytest

from repro.fl.admission import (
    AdmissionConfig,
    AdmissionController,
    REJECT_NONFINITE,
    REJECT_NORM,
    REJECT_PROVENANCE,
    REJECT_STRUCTURE,
    ReputationConfig,
    ReputationTracker,
)
from repro.nn.serialize import flatten_weights
from repro.obs import FakeClock, fresh


def make_weights(scale=0.0, seed=0):
    rng = np.random.default_rng(seed)
    return [
        {"weight": rng.normal(size=(4, 3)) + scale, "bias": rng.normal(size=4)},
        {"weight": rng.normal(size=(2, 4)) + scale, "bias": rng.normal(size=2)},
    ]


@pytest.fixture
def obs_ctx():
    with fresh(clock=FakeClock()) as ctx:
        yield ctx


class TestStructure:
    def test_matching_structure_admitted(self, obs_ctx):
        template = make_weights()
        gate = AdmissionController(template)
        decision = gate.check("c0", make_weights(seed=1))
        assert decision.admitted
        assert decision.weights is not None

    def test_layer_count_mismatch_rejected(self, obs_ctx):
        gate = AdmissionController(make_weights())
        decision = gate.check("c0", make_weights()[:1])
        assert not decision.admitted
        assert decision.reason == REJECT_STRUCTURE

    def test_key_set_mismatch_rejected(self, obs_ctx):
        gate = AdmissionController(make_weights())
        bad = make_weights()
        bad[0] = {"weight": bad[0]["weight"], "gamma": bad[0]["bias"]}
        assert gate.check("c0", bad).reason == REJECT_STRUCTURE

    def test_shape_mismatch_rejected(self, obs_ctx):
        gate = AdmissionController(make_weights())
        bad = make_weights()
        bad[1]["bias"] = np.zeros(5)
        assert gate.check("c0", bad).reason == REJECT_STRUCTURE


class TestNumericalHealth:
    def test_nan_rejected(self, obs_ctx):
        gate = AdmissionController(make_weights())
        bad = make_weights(seed=1)
        bad[0]["weight"][0, 0] = np.nan
        assert gate.check("c0", bad).reason == REJECT_NONFINITE

    def test_inf_rejected(self, obs_ctx):
        gate = AdmissionController(make_weights())
        bad = make_weights(seed=1)
        bad[1]["bias"][0] = np.inf
        assert gate.check("c0", bad).reason == REJECT_NONFINITE

    def test_check_can_be_disabled(self, obs_ctx):
        gate = AdmissionController(
            make_weights(), AdmissionConfig(check_finite=False)
        )
        bad = make_weights(seed=1)
        bad[0]["weight"][0, 0] = np.nan
        assert gate.check("c0", bad).admitted


class TestNormCeiling:
    def test_delta_norm_measured_against_reference(self, obs_ctx):
        reference = make_weights()
        gate = AdmissionController(reference, AdmissionConfig(max_norm=1.0))
        # Same weights as the reference: delta norm 0, admitted.
        assert gate.check("c0", reference, reference=reference).admitted
        # Far away in absolute terms but that is irrelevant without drift.
        far = [
            {key: value + 100.0 for key, value in layer.items()}
            for layer in reference
        ]
        decision = gate.check("c0", far, reference=far)
        assert decision.admitted

    def test_over_norm_rejected(self, obs_ctx):
        reference = make_weights()
        gate = AdmissionController(reference, AdmissionConfig(max_norm=1.0))
        far = [
            {key: value + 10.0 for key, value in layer.items()}
            for layer in reference
        ]
        decision = gate.check("c0", far, reference=reference)
        assert not decision.admitted
        assert decision.reason == REJECT_NORM
        assert decision.norm > 1.0

    def test_clip_rescales_onto_ceiling(self, obs_ctx):
        reference = make_weights()
        gate = AdmissionController(
            reference, AdmissionConfig(max_norm=2.0, clip=True)
        )
        far = [
            {key: value + 5.0 for key, value in layer.items()}
            for layer in reference
        ]
        decision = gate.check("c0", far, reference=reference)
        assert decision.admitted and decision.clipped
        delta = flatten_weights(decision.weights) - flatten_weights(reference)
        assert np.linalg.norm(delta) == pytest.approx(2.0)
        # Direction is preserved, only the magnitude changes.
        raw = flatten_weights(far) - flatten_weights(reference)
        cos = delta @ raw / (np.linalg.norm(delta) * np.linalg.norm(raw))
        assert cos == pytest.approx(1.0)

    def test_invalid_ceiling_rejected(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_norm=0.0)


class TestProvenance:
    def test_unattested_sender_rejected_when_required(self, obs_ctx):
        gate = AdmissionController(
            make_weights(), AdmissionConfig(require_provenance=True)
        )
        good = make_weights(seed=1)
        assert gate.check("c0", good, attested=True).admitted
        assert gate.check("c0", good, attested=False).reason == REJECT_PROVENANCE

    def test_unattested_tolerated_by_default(self, obs_ctx):
        gate = AdmissionController(make_weights())
        assert gate.check("c0", make_weights(seed=1), attested=False).admitted


class TestAdmissionMetrics:
    def test_counters_registered_and_labelled(self, obs_ctx):
        gate = AdmissionController(make_weights(), AdmissionConfig(max_norm=1.0))
        snapshot = obs_ctx.registry.snapshot()
        # Registered at construction: present even before any check.
        assert "fl.admission.rejected" in snapshot["counters"]
        far = [
            {key: value + 10.0 for key, value in layer.items()}
            for layer in make_weights()
        ]
        gate.check("evil", far, reference=make_weights())
        rejected = obs_ctx.registry.counter("fl.admission.rejected")
        assert rejected.total() == 1


class TestReputation:
    def test_strikes_tip_into_quarantine(self, obs_ctx):
        ledger = ReputationTracker(ReputationConfig(max_strikes=3))
        for _ in range(2):
            ledger.record_rejection("c0", round_index=0)
        assert ledger.status("c0", 1) == "ok"
        ledger.record_rejection("c0", round_index=0)
        assert ledger.status("c0", 1) == "quarantined"

    def test_quarantine_expires(self, obs_ctx):
        ledger = ReputationTracker(
            ReputationConfig(max_strikes=1, quarantine_rounds=2)
        )
        ledger.record_rejection("c0", round_index=5)
        assert ledger.is_blocked("c0", 6)
        assert ledger.is_blocked("c0", 7)
        assert not ledger.is_blocked("c0", 8)

    def test_repeat_quarantines_evict_permanently(self, obs_ctx):
        ledger = ReputationTracker(
            ReputationConfig(max_strikes=1, quarantine_rounds=1, evict_after=2)
        )
        ledger.record_rejection("c0", round_index=0)
        ledger.record_rejection("c0", round_index=10)
        assert ledger.status("c0", 10_000) == "evicted"
        # Further events on an evicted client are inert.
        ledger.record_rejection("c0", round_index=10_001)
        assert ledger.status("c0", 10_002) == "evicted"

    def test_admission_heals_one_strike(self, obs_ctx):
        ledger = ReputationTracker(ReputationConfig(max_strikes=2))
        ledger.record_rejection("c0", round_index=0)
        ledger.record_admission("c0")
        ledger.record_rejection("c0", round_index=1)
        # Healed strike means this second rejection is only the first again.
        assert ledger.status("c0", 2) == "ok"

    def test_quarantine_counter_fires(self, obs_ctx):
        ledger = ReputationTracker(ReputationConfig(max_strikes=1))
        ledger.record_rejection("bad", round_index=0)
        counter = obs_ctx.registry.counter("fl.reputation.quarantined")
        assert counter.total() == 1

    def test_snapshot_is_sorted_and_json_safe(self, obs_ctx):
        import json

        ledger = ReputationTracker(ReputationConfig(max_strikes=1))
        ledger.record_rejection("z", round_index=0)
        ledger.record_rejection("a", round_index=0)
        snap = ledger.snapshot(round_index=1)
        assert snap["quarantined"] == ["a", "z"]
        json.dumps(snap)

    def test_state_dict_round_trip(self, obs_ctx):
        ledger = ReputationTracker(
            ReputationConfig(max_strikes=1, quarantine_rounds=3)
        )
        ledger.record_rejection("c0", round_index=4)
        ledger.record_rejection("c1", round_index=4)
        restored = ReputationTracker(ledger.config)
        restored.load_state(ledger.state_dict())
        for rnd in (5, 6, 7, 8):
            assert restored.status("c0", rnd) == ledger.status("c0", rnd)
        assert restored.state_dict() == ledger.state_dict()

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ReputationConfig(max_strikes=0)
        with pytest.raises(ValueError):
            ReputationConfig(quarantine_rounds=0)
        with pytest.raises(ValueError):
            ReputationConfig(evict_after=0)
