"""Tests for FedAvg and update merging."""

import numpy as np
import pytest

from repro.fl import fedavg, merge_plain_and_sealed, weighted_average


def make_weights(value, layers=2):
    return [{"weight": np.full((2, 2), float(value))} for _ in range(layers)]


class TestWeightedAverage:
    def test_uniform_average(self):
        out = fedavg([make_weights(1), make_weights(3)])
        np.testing.assert_allclose(out[0]["weight"], 2.0)

    def test_sample_weighted(self):
        out = weighted_average([make_weights(0), make_weights(10)], [1, 3])
        np.testing.assert_allclose(out[0]["weight"], 7.5)

    def test_single_client_identity(self):
        out = fedavg([make_weights(5)])
        np.testing.assert_allclose(out[0]["weight"], 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fedavg([])

    def test_misaligned_counts_rejected(self):
        with pytest.raises(ValueError, match="align"):
            weighted_average([make_weights(1)], [1, 2])

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            weighted_average([make_weights(1)], [0])

    def test_layer_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="layer count"):
            fedavg([make_weights(1, layers=2), make_weights(1, layers=3)])

    def test_preserves_all_param_names(self):
        a = [{"weight": np.ones((2,)), "bias": np.zeros(1)}]
        b = [{"weight": np.zeros((2,)), "bias": np.ones(1)}]
        out = fedavg([a, b])
        assert set(out[0]) == {"weight", "bias"}
        np.testing.assert_allclose(out[0]["bias"], 0.5)


class TestMergePlainAndSealed:
    def test_merge(self):
        plain = [{"weight": np.ones(2)}, {}]
        sealed = [{}, {"weight": np.zeros(2)}]
        merged = merge_plain_and_sealed(plain, sealed)
        np.testing.assert_array_equal(merged[0]["weight"], np.ones(2))
        np.testing.assert_array_equal(merged[1]["weight"], np.zeros(2))

    def test_overlap_rejected(self):
        plain = [{"weight": np.ones(2)}]
        sealed = [{"weight": np.zeros(2)}]
        with pytest.raises(ValueError, match="both"):
            merge_plain_and_sealed(plain, sealed)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            merge_plain_and_sealed([{}], [{}, {}])
