"""Tests for FedAvg and update merging."""

import numpy as np
import pytest

from repro.fl import (
    CompensatedAccumulator,
    StreamingWeightedSum,
    fedavg,
    merge_plain_and_sealed,
    weighted_average,
)


def make_weights(value, layers=2):
    return [{"weight": np.full((2, 2), float(value))} for _ in range(layers)]


def legacy_weighted_average(weights_list, sample_counts):
    """The pre-PR4 implementation, verbatim: naive left-to-right fold."""
    total = float(sum(sample_counts))
    out = []
    for layer_index in range(len(weights_list[0])):
        merged = {}
        for key in weights_list[0][layer_index]:
            merged[key] = sum(
                (count / total) * np.asarray(weights[layer_index][key])
                for weights, count in zip(weights_list, sample_counts)
            )
        out.append(merged)
    return out


class TestWeightedAverage:
    def test_uniform_average(self):
        out = fedavg([make_weights(1), make_weights(3)])
        np.testing.assert_allclose(out[0]["weight"], 2.0)

    def test_sample_weighted(self):
        out = weighted_average([make_weights(0), make_weights(10)], [1, 3])
        np.testing.assert_allclose(out[0]["weight"], 7.5)

    def test_single_client_identity(self):
        out = fedavg([make_weights(5)])
        np.testing.assert_allclose(out[0]["weight"], 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fedavg([])

    def test_misaligned_counts_rejected(self):
        with pytest.raises(ValueError, match="align"):
            weighted_average([make_weights(1)], [1, 2])

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            weighted_average([make_weights(1)], [0])

    def test_layer_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="layer count"):
            fedavg([make_weights(1, layers=2), make_weights(1, layers=3)])

    def test_preserves_all_param_names(self):
        a = [{"weight": np.ones((2,)), "bias": np.zeros(1)}]
        b = [{"weight": np.zeros((2,)), "bias": np.ones(1)}]
        out = fedavg([a, b])
        assert set(out[0]) == {"weight", "bias"}
        np.testing.assert_allclose(out[0]["bias"], 0.5)


class TestWeightedAverageRegression:
    """The preallocated hot loop is bitwise-identical to the old generator."""

    def random_cohort(self, seed, num_clients=9, layers=3):
        rng = np.random.default_rng(seed)
        scales = 10.0 ** rng.integers(-6, 7, size=num_clients).astype(float)
        weights_list = [
            [
                {
                    "w": scales[i] * rng.normal(size=(4, 3)),
                    "b": rng.normal(size=3),
                }
                for _ in range(layers)
            ]
            for i in range(num_clients)
        ]
        counts = [int(c) for c in rng.integers(1, 200, size=num_clients)]
        return weights_list, counts

    @pytest.mark.parametrize("seed", range(20))
    def test_bitwise_equal_to_legacy_implementation(self, seed):
        weights_list, counts = self.random_cohort(seed)
        new = weighted_average(weights_list, counts)
        old = legacy_weighted_average(weights_list, counts)
        for left, right in zip(new, old):
            for key in left:
                np.testing.assert_array_equal(left[key], right[key])

    def test_negative_zero_canonicalised_like_legacy(self):
        # The old generator summed from int 0, so a single -0.0 contribution
        # came out as +0.0; the preallocated loop must preserve that bit.
        weights_list = [[{"w": np.array([-0.0, 1.0])}]]
        new = weighted_average(weights_list, [3])
        old = legacy_weighted_average(weights_list, [3])
        assert np.signbit(new[0]["w"][0]) == np.signbit(old[0]["w"][0])


class TestExactAccumulation:
    def test_catastrophic_cancellation_is_exact(self):
        acc = CompensatedAccumulator(1)
        for value in (1e16, 1.0, -1e16, 1e-30, 2.0, -3.0):
            acc.add(np.array([value]))
        assert acc.value()[0] == 1e-30

    def test_fold_order_cannot_change_the_sum(self):
        rng = np.random.default_rng(11)
        values = 10.0 ** rng.integers(-8, 9, size=64).astype(
            float
        ) * rng.normal(size=64)
        forward = CompensatedAccumulator(1)
        for v in values:
            forward.add(np.array([v]))
        backward = CompensatedAccumulator(1)
        for v in values[::-1]:
            backward.add(np.array([v]))
        assert forward.value()[0] == backward.value()[0]

    def test_streaming_sum_merge_matches_single_stream(self):
        template = make_weights(0)
        updates = [make_weights(i * 0.7 + 0.1) for i in range(8)]
        counts = [1, 3, 2, 8, 1, 5, 2, 4]
        single = StreamingWeightedSum(template)
        for update, count in zip(updates, counts):
            single.fold(update, count)
        left = StreamingWeightedSum(template)
        right = StreamingWeightedSum(template)
        for i, (update, count) in enumerate(zip(updates, counts)):
            (left if i % 2 else right).fold(update, count)
        left.merge(right)
        for a, b in zip(single.finalize(), left.finalize()):
            for key in a:
                np.testing.assert_array_equal(a[key], b[key])

    def test_component_count_stays_bounded(self):
        acc = CompensatedAccumulator(4)
        rng = np.random.default_rng(3)
        for _ in range(500):
            acc.add(10.0 ** float(rng.integers(-10, 11)) * rng.normal(size=4))
        assert acc.num_components <= 64


class TestMergePlainAndSealed:
    def test_merge(self):
        plain = [{"weight": np.ones(2)}, {}]
        sealed = [{}, {"weight": np.zeros(2)}]
        merged = merge_plain_and_sealed(plain, sealed)
        np.testing.assert_array_equal(merged[0]["weight"], np.ones(2))
        np.testing.assert_array_equal(merged[1]["weight"], np.zeros(2))

    def test_overlap_rejected(self):
        plain = [{"weight": np.ones(2)}]
        sealed = [{"weight": np.zeros(2)}]
        with pytest.raises(ValueError, match="both"):
            merge_plain_and_sealed(plain, sealed)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            merge_plain_and_sealed([{}], [{}, {}])
