"""Unit tests for the FedBuff-style :class:`BufferedAggregator`.

The bitwise equivalence and order-invariance claims get their randomised
treatment in ``test_fl_buffer_property.py``; this module pins the API:
window lifecycle, staleness weighting, robust-rule composition, wire
partials, and the mid-window checkpoint round-trip.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.fl import (
    BufferConfig,
    BufferedAggregator,
    RobustShardPartial,
    ShardPartial,
    ShardingConfig,
    apply_rule,
    fedavg,
)
from repro.nn.serialize import flatten_weights

pytestmark = [getattr(pytest.mark, "async")]  # "async" is a keyword


def make_update(seed, layers=2, size=5):
    rng = np.random.default_rng(seed)
    return [
        {"w": rng.normal(size=size), "b": rng.normal(size=2)}
        for _ in range(layers)
    ]


def assert_weights_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.keys() == b.keys()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])


class TestBufferConfig:
    def test_defaults(self):
        config = BufferConfig()
        assert config.size == 32
        assert config.staleness == "constant"

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferConfig(size=0)
        with pytest.raises(ValueError):
            BufferConfig(staleness="linear")
        with pytest.raises(ValueError):
            BufferConfig(exponent=-0.5)

    def test_constant_weight_is_exactly_one(self):
        config = BufferConfig(staleness="constant")
        for tau in (0, 1, 7, 1000):
            assert config.weight(tau) == 1.0

    def test_polynomial_weight_decays(self):
        config = BufferConfig(staleness="polynomial", exponent=1.0)
        assert config.weight(0) == 1.0
        assert config.weight(1) == 0.5
        assert config.weight(3) == 0.25
        half = BufferConfig(staleness="polynomial", exponent=0.5)
        assert half.weight(3) == pytest.approx(0.5)

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError):
            BufferConfig().weight(-1)


class TestWindowLifecycle:
    def test_pending_and_ready(self):
        updates = [make_update(i) for i in range(3)]
        buffer = BufferedAggregator(updates[0], BufferConfig(size=3))
        assert buffer.pending == 0 and not buffer.ready
        for update in updates[:2]:
            buffer.fold(0, update, 1)
        assert buffer.pending == 2 and not buffer.ready
        buffer.fold(0, updates[2], 1)
        assert buffer.ready
        buffer.commit()
        assert buffer.pending == 0 and not buffer.ready
        assert buffer.commits == 1

    def test_empty_commit_rejected(self):
        buffer = BufferedAggregator(make_update(0), BufferConfig(size=2))
        with pytest.raises(ValueError, match="no updates buffered"):
            buffer.commit()

    def test_bad_folds_rejected(self):
        buffer = BufferedAggregator(make_update(0), BufferConfig(size=2))
        with pytest.raises(ValueError, match="num_samples"):
            buffer.fold(0, make_update(1), 0)
        with pytest.raises(ValueError, match="parameter count"):
            buffer.fold(0, make_update(1), 1, flat=np.zeros(3))

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregation rule"):
            BufferedAggregator(make_update(0), rule="meteor")

    def test_flat_passthrough_is_bitwise_identical(self):
        updates = [make_update(i) for i in range(4)]
        via_weights = BufferedAggregator(updates[0], BufferConfig(size=4))
        via_flat = BufferedAggregator(updates[0], BufferConfig(size=4))
        for update in updates:
            via_weights.fold(0, update, 3)
            via_flat.fold(0, update, 3, flat=flatten_weights(update))
        assert_weights_equal(via_weights.commit(), via_flat.commit())


class TestFedavgCommit:
    def test_matches_fedavg_bitwise(self):
        updates = [make_update(i) for i in range(6)]
        counts = [1, 3, 2, 8, 1, 5]
        for shards in (1, 3):
            buffer = BufferedAggregator(
                updates[0],
                BufferConfig(size=6),
                ShardingConfig(num_shards=shards, track_memory=False),
            )
            for position, (update, count) in enumerate(zip(updates, counts)):
                buffer.fold(position % shards, update, count)
            assert_weights_equal(buffer.commit(), fedavg(updates, counts))

    def test_polynomial_staleness_downweights(self):
        fresh_update = [{"w": np.full(4, 1.0)}]
        stale_update = [{"w": np.full(4, 3.0)}]
        buffer = BufferedAggregator(
            fresh_update,
            BufferConfig(size=2, staleness="polynomial", exponent=1.0),
        )
        buffer.fold(0, fresh_update, 1, staleness=0)  # weight 1
        buffer.fold(0, stale_update, 1, staleness=1)  # weight 0.5
        committed = buffer.commit()[0]["w"]
        expected = (1.0 * 1.0 + 0.5 * 3.0) / 1.5
        np.testing.assert_allclose(committed, expected, rtol=1e-15)

    def test_weighted_fold_matches_fsum_reference(self):
        rng = np.random.default_rng(7)
        vectors = [rng.normal(size=6) * 10.0 ** rng.integers(-4, 5)
                   for _ in range(9)]
        counts = [int(c) for c in rng.integers(1, 40, size=9)]
        stalenesses = [int(s) for s in rng.integers(0, 5, size=9)]
        config = BufferConfig(size=9, staleness="polynomial", exponent=0.7)
        buffer = BufferedAggregator([{"w": vectors[0]}], config)
        for i, vector in enumerate(vectors):
            buffer.fold(0, [{"w": vector}], counts[i], staleness=stalenesses[i])
        committed = buffer.commit()[0]["w"]
        contributions = [
            config.weight(stalenesses[i]) * float(counts[i]) for i in range(9)
        ]
        denominator = math.fsum(contributions)
        for j in range(6):
            numerator = math.fsum(
                contributions[i] * vectors[i][j] for i in range(9)
            )
            assert committed[j] == numerator / denominator


class TestRobustCommit:
    def test_median_matches_apply_rule_on_sorted_rows(self):
        updates = [make_update(i) for i in range(5)]
        buffer = BufferedAggregator(
            updates[0],
            BufferConfig(size=5),
            ShardingConfig(num_shards=2, track_memory=False),
            rule="median",
        )
        # fold in scrambled arrival order with explicit dispatch sort keys
        order = [3, 0, 4, 1, 2]
        for arrival, position in enumerate(order):
            buffer.fold(
                arrival % 2, updates[position], 1, sort_key=position
            )
        expected = apply_rule(
            "median", [flatten_weights(u) for u in updates]
        )
        np.testing.assert_array_equal(
            flatten_weights(buffer.commit()), expected
        )

    def test_duplicate_sort_keys_rejected(self):
        buffer = BufferedAggregator(
            make_update(0), BufferConfig(size=2), rule="median"
        )
        buffer.fold(0, make_update(1), 1, sort_key=5)
        buffer.fold(0, make_update(2), 1, sort_key=5)
        with pytest.raises(ValueError, match="sort keys must be unique"):
            buffer.commit()


class TestPartials:
    def test_fedavg_partials_are_shard_partials(self):
        updates = [make_update(i) for i in range(4)]
        buffer = BufferedAggregator(
            updates[0],
            BufferConfig(size=4),
            ShardingConfig(num_shards=3, track_memory=False),
        )
        buffer.fold(0, updates[0], 2)
        buffer.fold(2, updates[1], 3)
        partials = buffer.partials()
        assert [p.shard_id for p in partials] == [0, 2]
        assert all(isinstance(p, ShardPartial) for p in partials)
        assert partials[0].total_samples == 2
        assert all(p.folds == 1 for p in partials)

    def test_robust_partials_are_row_batches(self):
        updates = [make_update(i) for i in range(3)]
        buffer = BufferedAggregator(
            updates[0],
            BufferConfig(size=3),
            ShardingConfig(num_shards=2, track_memory=False),
            rule="krum",
        )
        for position, update in enumerate(updates):
            buffer.fold(position % 2, update, 1, sort_key=position)
        partials = buffer.partials()
        assert all(isinstance(p, RobustShardPartial) for p in partials)
        assert sum(p.count for p in partials) == 3

    def test_peak_bytes_accounts_live_state(self):
        updates = [make_update(i) for i in range(3)]
        buffer = BufferedAggregator(updates[0], BufferConfig(size=3))
        assert buffer.peak_bytes == 0
        for update in updates:
            buffer.fold(0, update, 1)
        assert buffer.peak_bytes >= buffer.live_bytes > 0
        buffer.commit()
        assert buffer.peak_bytes > 0  # the high-water mark survives the reset


class TestCheckpointRoundTrip:
    def _folded(self, rule):
        updates = [make_update(i) for i in range(5)]
        buffer = BufferedAggregator(
            updates[0],
            BufferConfig(size=5),
            ShardingConfig(num_shards=2, track_memory=False),
            rule=rule,
        )
        for position, update in enumerate(updates[:3]):
            buffer.fold(position % 2, update, position + 1, sort_key=position)
        return buffer, updates

    @pytest.mark.parametrize("rule", ["fedavg", "median"])
    def test_mid_window_state_round_trips_bitwise(self, rule):
        buffer, updates = self._folded(rule)
        state = buffer.state_dict()
        restored = BufferedAggregator(
            updates[0],
            BufferConfig(size=5),
            ShardingConfig(num_shards=2, track_memory=False),
            rule=rule,
        )
        restored.load_state(state)
        assert restored.pending == buffer.pending
        for position, update in enumerate(updates[3:], start=3):
            buffer.fold(position % 2, update, position + 1, sort_key=position)
            restored.fold(position % 2, update, position + 1, sort_key=position)
        assert_weights_equal(buffer.commit(), restored.commit())

    def test_state_is_json_safe(self):
        import json

        buffer, _ = self._folded("fedavg")
        encoded = json.dumps(buffer.state_dict(), sort_keys=True)
        assert json.loads(encoded)["pending"] == 3

    def test_rule_mismatch_rejected(self):
        buffer, updates = self._folded("fedavg")
        other = BufferedAggregator(
            updates[0], BufferConfig(size=5), rule="median"
        )
        with pytest.raises(ValueError, match="checkpointed rule"):
            other.load_state(buffer.state_dict())

    def test_shard_count_mismatch_rejected(self):
        buffer, updates = self._folded("fedavg")
        other = BufferedAggregator(
            updates[0],
            BufferConfig(size=5),
            ShardingConfig(num_shards=4, track_memory=False),
        )
        with pytest.raises(ValueError, match="shard count"):
            other.load_state(buffer.state_dict())
