"""Property-based tests: the buffered commit is exact and order-free.

Three claims, randomised over update values spanning many orders of
magnitude, shard topologies, and arrival orders:

1. With constant staleness weights and ``K == cohort``, one async commit
   is **bitwise identical** to the sync :func:`~repro.fl.aggregation.fedavg`
   round over the same updates — the equivalence the simulator's
   sync-vs-async determinism tests lean on.
2. A commit is a pure function of the folded multiset: arrival order and
   shard routing cannot change a single bit, for the exact weighted fold
   and for the robust rules alike.
3. The staleness-weighted fold matches a per-coordinate :func:`math.fsum`
   reference over the rounded products ``(w_i * n_i) * x_i`` — the
   accumulator introduces no rounding beyond the one final division.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fl import (
    BufferConfig,
    BufferedAggregator,
    ShardingConfig,
    fedavg,
    shard_of,
)

pytestmark = [pytest.mark.property, getattr(pytest.mark, "async")]

settings.register_profile("ci", max_examples=25, deadline=None)
settings.load_profile("ci")


def make_updates(seed, num_clients, size, magnitude):
    rng = np.random.default_rng(seed)
    scales = 10.0 ** rng.integers(-magnitude, magnitude + 1, size=num_clients)
    updates = [
        [{"w": scales[i] * rng.normal(size=size), "b": rng.normal(size=2)}]
        for i in range(num_clients)
    ]
    counts = [int(c) for c in rng.integers(1, 50, size=num_clients)]
    return updates, counts


def assert_weights_equal(left, right):
    for a, b in zip(left, right):
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])


@given(
    seed=st.integers(0, 2**32 - 1),
    num_clients=st.integers(1, 24),
    num_shards=st.integers(1, 32),
    size=st.integers(1, 17),
    magnitude=st.integers(0, 6),
)
def test_full_buffer_commit_is_bitwise_fedavg(
    seed, num_clients, num_shards, size, magnitude
):
    updates, counts = make_updates(seed, num_clients, size, magnitude)
    buffer = BufferedAggregator(
        updates[0],
        BufferConfig(size=num_clients, staleness="constant"),
        ShardingConfig(num_shards=num_shards, track_memory=False),
    )
    for position, (update, count) in enumerate(zip(updates, counts)):
        shard = shard_of(position, num_clients, num_shards)
        buffer.fold(shard, update, count, staleness=0, sort_key=position)
    assert_weights_equal(buffer.commit(), fedavg(updates, counts))


@given(
    seed=st.integers(0, 2**32 - 1),
    num_clients=st.integers(2, 16),
    shards_a=st.integers(1, 8),
    shards_b=st.integers(1, 8),
    size=st.integers(1, 16),
    rule=st.sampled_from(["fedavg", "median", "trimmed_mean", "krum"]),
)
def test_commit_invariant_to_arrival_order_and_routing(
    seed, num_clients, shards_a, shards_b, size, rule
):
    updates, counts = make_updates(seed, num_clients, size, 4)
    rng = np.random.default_rng(seed ^ 0xBEEF)
    stalenesses = [int(s) for s in rng.integers(0, 6, size=num_clients)]

    def build(num_shards):
        return BufferedAggregator(
            updates[0],
            BufferConfig(
                size=num_clients, staleness="polynomial", exponent=0.5
            ),
            ShardingConfig(num_shards=num_shards, track_memory=False),
            rule=rule,
        )

    one = build(shards_a)
    for position in range(num_clients):
        one.fold(
            int(rng.integers(0, shards_a)),
            updates[position],
            counts[position],
            staleness=stalenesses[position],
            sort_key=position,
        )
    other = build(shards_b)
    for position in rng.permutation(num_clients):
        other.fold(
            int(rng.integers(0, shards_b)),
            updates[position],
            counts[position],
            staleness=stalenesses[position],
            sort_key=int(position),
        )
    assert_weights_equal(one.commit(), other.commit())


@given(
    seed=st.integers(0, 2**32 - 1),
    num_clients=st.integers(1, 20),
    size=st.integers(1, 12),
    magnitude=st.integers(0, 6),
    exponent=st.floats(0.0, 3.0),
)
def test_weighted_fold_matches_fsum_reference(
    seed, num_clients, size, magnitude, exponent
):
    rng = np.random.default_rng(seed)
    scales = 10.0 ** rng.integers(-magnitude, magnitude + 1, size=num_clients)
    vectors = [scales[i] * rng.normal(size=size) for i in range(num_clients)]
    counts = [int(c) for c in rng.integers(1, 50, size=num_clients)]
    stalenesses = [int(s) for s in rng.integers(0, 8, size=num_clients)]
    config = BufferConfig(
        size=num_clients, staleness="polynomial", exponent=exponent
    )
    buffer = BufferedAggregator([{"w": vectors[0]}], config)
    for i, vector in enumerate(vectors):
        buffer.fold(
            0, [{"w": vector}], counts[i], staleness=stalenesses[i]
        )
    committed = buffer.commit()[0]["w"]
    contributions = [
        config.weight(stalenesses[i]) * float(counts[i])
        for i in range(num_clients)
    ]
    denominator = math.fsum(contributions)
    for j in range(size):
        numerator = math.fsum(
            contributions[i] * vectors[i][j] for i in range(num_clients)
        )
        assert committed[j] == numerator / denominator
