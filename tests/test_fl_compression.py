"""Tests for top-k update compression with error feedback."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fl.compression import SparseUpdate, TopKCompressor

settings.register_profile("ci", max_examples=20, deadline=None)
settings.load_profile("ci")


class TestSparseUpdate:
    def test_densify_roundtrip(self):
        sparse = SparseUpdate(6, np.array([1, 4]), np.array([2.0, -3.0]))
        np.testing.assert_array_equal(sparse.densify(), [0, 2, 0, 0, -3, 0])

    def test_index_bounds_checked(self):
        with pytest.raises(ValueError):
            SparseUpdate(3, np.array([5]), np.array([1.0]))

    def test_wire_bytes_and_density(self):
        sparse = SparseUpdate(100, np.arange(10), np.zeros(10))
        assert sparse.wire_bytes() == 80
        assert sparse.density == pytest.approx(0.1)


class TestTopKCompressor:
    def test_keeps_largest_magnitudes(self):
        compressor = TopKCompressor(ratio=0.25, error_feedback=False)
        update = np.array([0.1, -5.0, 0.2, 3.0, 0.05, -0.3, 0.0, 1.0])
        sparse = compressor.compress(update)
        np.testing.assert_array_equal(sorted(sparse.values, key=abs, reverse=True), [-5.0, 3.0])

    def test_ratio_validated(self):
        with pytest.raises(ValueError):
            TopKCompressor(ratio=0.0)

    def test_error_feedback_preserves_total_mass(self):
        """Over rounds, sent + residual always equals the cumulative input."""
        compressor = TopKCompressor(ratio=0.3)
        rng = np.random.default_rng(0)
        cumulative = np.zeros(20)
        sent = np.zeros(20)
        for _ in range(5):
            update = rng.normal(size=20)
            cumulative += update
            sent += compressor.compress(update, "c").densify()
        residual = compressor._residuals["c"]
        np.testing.assert_allclose(sent + residual, cumulative, atol=1e-10)

    def test_error_feedback_eventually_sends_small_coords(self):
        """A persistently tiny coordinate accumulates and gets sent."""
        compressor = TopKCompressor(ratio=0.1)
        update = np.zeros(10)
        update[0] = 1.0     # always dominates
        update[5] = 0.3     # accumulates via feedback
        seen_five = False
        for _ in range(6):
            sparse = compressor.compress(update, "c")
            if 5 in sparse.indices:
                seen_five = True
        assert seen_five

    def test_residual_isolated_per_client(self):
        compressor = TopKCompressor(ratio=0.5)
        compressor.compress(np.array([1.0, 0.1]), "a")
        assert compressor.residual_norm("b") == 0.0
        assert compressor.residual_norm("a") > 0.0

    def test_size_change_rejected(self):
        compressor = TopKCompressor(ratio=0.5)
        compressor.compress(np.ones(4), "c")
        with pytest.raises(ValueError, match="size changed"):
            compressor.compress(np.ones(5), "c")

    def test_reset(self):
        compressor = TopKCompressor(ratio=0.5)
        compressor.compress(np.array([1.0, 0.2]), "c")
        compressor.reset("c")
        assert compressor.residual_norm("c") == 0.0

    def test_full_ratio_sends_everything(self):
        compressor = TopKCompressor(ratio=1.0, error_feedback=False)
        update = np.array([1.0, -2.0, 0.0])
        np.testing.assert_array_equal(compressor.compress(update).densify(), update)

    @given(st.integers(0, 200), st.floats(0.05, 1.0))
    def test_densified_never_exceeds_input_magnitude(self, seed, ratio):
        compressor = TopKCompressor(ratio=ratio, error_feedback=False)
        update = np.random.default_rng(seed).normal(size=30)
        dense = compressor.compress(update).densify()
        mask = dense != 0
        np.testing.assert_array_equal(dense[mask], update[mask])
