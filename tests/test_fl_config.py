"""Tests for the typed FLServer configuration and the legacy-kwarg shim."""

import dataclasses

import numpy as np
import pytest

from repro.fl import (
    FLServer,
    RetryPolicy,
    RoundConfig,
    ServerConfig,
    ShardingConfig,
    TrainingPlan,
)
from repro.nn import mlp


def make_server(**kwargs):
    model = mlp(num_classes=4, input_shape=(6,), hidden=(8, 5), seed=0)
    return FLServer(model, TrainingPlan(lr=0.1, batch_size=4), **kwargs)


class TestConfigTypes:
    def test_defaults(self):
        config = ServerConfig()
        assert config.allow_legacy is False
        assert config.seed == 7
        assert config.round.retry is None
        assert config.round.reattest is True
        assert config.sharding.num_shards == 1
        assert config.sharding.flat

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ServerConfig().seed = 1
        with pytest.raises(dataclasses.FrozenInstanceError):
            ShardingConfig().num_shards = 2
        with pytest.raises(dataclasses.FrozenInstanceError):
            RoundConfig().reattest = False

    def test_sharding_validates(self):
        with pytest.raises(ValueError, match="num_shards"):
            ShardingConfig(num_shards=0)
        assert ShardingConfig(num_shards=2).flat is False

    def test_from_legacy_maps_every_kwarg(self):
        retry = RetryPolicy(max_retries=2)
        config = ServerConfig.from_legacy(
            allow_legacy=True, retry=retry, reattest=False, seed=11
        )
        assert config.allow_legacy is True
        assert config.seed == 11
        assert config.round.retry is retry
        assert config.round.reattest is False
        assert config.sharding.flat  # legacy servers were always flat


class TestLegacyShim:
    def test_config_path_emits_no_warning(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            make_server(config=ServerConfig(seed=3))

    def test_legacy_kwargs_warn_but_work(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            server = make_server(seed=3, reattest=False)
        assert server.config.seed == 3
        assert server.reattest is False

    def test_positional_allow_legacy_still_works(self):
        model = mlp(num_classes=4, input_shape=(6,), hidden=(8, 5), seed=0)
        with pytest.warns(DeprecationWarning):
            server = FLServer(
                model, TrainingPlan(lr=0.1, batch_size=4), None, True
            )
        assert server.config.allow_legacy is True

    def test_both_paths_build_identical_servers(self):
        retry = RetryPolicy(max_retries=3)
        with pytest.warns(DeprecationWarning):
            legacy = make_server(
                allow_legacy=True, retry=retry, reattest=False, seed=5
            )
        modern = make_server(
            config=ServerConfig(
                allow_legacy=True,
                seed=5,
                round=RoundConfig(retry=retry, reattest=False),
            )
        )
        assert legacy.config == modern.config
        assert legacy.retry is modern.retry
        assert legacy.reattest == modern.reattest
        assert legacy.selector.allow_legacy == modern.selector.allow_legacy
        # Same seed => identical sampling schedule.
        assert np.array_equal(
            legacy._rng.integers(0, 1000, 8), modern._rng.integers(0, 1000, 8)
        )

    def test_mixing_config_and_legacy_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            make_server(seed=3, config=ServerConfig())

    def test_server_config_drives_sharding(self):
        server = make_server(
            config=ServerConfig(sharding=ShardingConfig(num_shards=4))
        )
        assert server.config.sharding.num_shards == 4
