"""Tests for the differential-privacy baseline."""

import numpy as np
import pytest

from repro.fl import GaussianMechanism, clip_by_norm


class TestClipping:
    def test_small_vector_unchanged(self):
        v = np.array([0.3, 0.4])
        np.testing.assert_array_equal(clip_by_norm(v, 1.0), v)

    def test_large_vector_scaled_to_bound(self):
        v = np.array([3.0, 4.0])
        out = clip_by_norm(v, 1.0)
        assert np.linalg.norm(out) == pytest.approx(1.0)
        # Direction preserved.
        np.testing.assert_allclose(out / np.linalg.norm(out), v / 5.0)

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ValueError):
            clip_by_norm(np.ones(2), 0.0)


class TestGaussianMechanism:
    def test_deterministic_per_step(self):
        mech = GaussianMechanism(clip_norm=1.0, sigma=1.0, seed=4)
        v = np.ones(8)
        np.testing.assert_array_equal(mech.privatize(v, 3), mech.privatize(v, 3))

    def test_different_steps_differ(self):
        mech = GaussianMechanism(seed=4)
        v = np.ones(8)
        assert not np.array_equal(mech.privatize(v, 0), mech.privatize(v, 1))

    def test_noise_scale_grows_with_sigma(self):
        v = np.zeros(4000)
        quiet = GaussianMechanism(sigma=0.1, seed=0).privatize(v)
        loud = GaussianMechanism(sigma=10.0, seed=0).privatize(v)
        assert loud.std() > 50 * quiet.std()

    def test_output_clipped_before_noise(self):
        mech = GaussianMechanism(clip_norm=1.0, sigma=0.0, seed=0)
        out = mech.privatize(np.array([30.0, 40.0]))
        assert np.linalg.norm(out) == pytest.approx(1.0)
