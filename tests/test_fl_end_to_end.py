"""End-to-end FL integration tests (server + clients + protection)."""

import numpy as np
import pytest

from repro.core import DynamicPolicy, NoProtection, StaticPolicy
from repro.data import synthetic_cifar
from repro.fl import FLClient, FLServer, TrainingPlan
from repro.nn import lenet5


NUM_CLASSES = 5


def build_deployment(policy_factory, clients=2, cycles=2, seed=0, **plan_kwargs):
    dataset = synthetic_cifar(num_samples=96, num_classes=NUM_CLASSES, seed=seed)
    shards = dataset.shard(clients)
    global_model = lenet5(num_classes=NUM_CLASSES, seed=7, scale=0.5)
    plan = TrainingPlan(
        lr=plan_kwargs.pop("lr", 0.2),
        batch_size=plan_kwargs.pop("batch_size", 16),
        local_steps=plan_kwargs.pop("local_steps", 1),
    )
    server = FLServer(global_model, plan, policy_factory())
    fl_clients = [
        FLClient(
            f"client-{i}",
            shards[i],
            lenet5(num_classes=NUM_CLASSES, seed=7, scale=0.5),
            policy=policy_factory(),
            seed=i,
        )
        for i in range(clients)
    ]
    return server, fl_clients, dataset


class TestUnprotectedFL:
    def test_training_improves_loss(self):
        server, clients, dataset = build_deployment(lambda: NoProtection(5))
        x = dataset.x[:64]
        y = dataset.one_hot_labels()[:64]
        before = server.model.loss(x, y).item()
        server.run(clients, cycles=3)
        assert server.model.loss(x, y).item() < before

    def test_history_records_each_cycle(self):
        server, clients, _ = build_deployment(lambda: NoProtection(5))
        server.run(clients, cycles=2)
        assert len(server.history) == 3  # initial + 2 cycles

    def test_channel_counts_traffic(self):
        server, clients, _ = build_deployment(lambda: NoProtection(5))
        server.run_cycle(clients)
        assert server.channel.downloads == len(clients)
        assert server.channel.uploads == len(clients)
        assert server.channel.downlink_bytes > 0


class TestProtectedFL:
    def test_static_protection_trains_identically(self):
        """Protection must not change the learning outcome at all."""
        srv_a, cl_a, dataset = build_deployment(lambda: NoProtection(5), seed=3)
        srv_b, cl_b, _ = build_deployment(lambda: StaticPolicy(5, [2, 5]), seed=3)
        srv_a.run(cl_a, cycles=2)
        srv_b.run(cl_b, cycles=2)
        for wa, wb in zip(srv_a.model.get_weights(), srv_b.model.get_weights()):
            for key in wa:
                np.testing.assert_allclose(wa[key], wb[key], rtol=1e-10)

    def test_client_leakage_excludes_protected(self):
        server, clients, _ = build_deployment(lambda: StaticPolicy(5, [2, 5]))
        server.run(clients, cycles=2)
        for client in clients:
            for leakage in client.leakage_log:
                grads = leakage.mean_gradients()
                assert grads[1] is None and grads[4] is None
                assert grads[0] is not None

    def test_protected_weights_never_plain_on_wire(self):
        server, clients, _ = build_deployment(lambda: StaticPolicy(5, [2]))
        updates = server.run_cycle(clients)
        for update in updates:
            assert update.plain_weights[1] == {}
            assert update.sealed_weights is not None

    def test_dynamic_policy_moves_window(self):
        factory = lambda: DynamicPolicy(5, 2, [0.25] * 4, seed=11)
        server, clients, _ = build_deployment(factory)
        server.run(clients, cycles=5)
        seen = {tuple(sorted(l.protected)) for l in clients[0].leakage_log}
        assert len(seen) > 1

    def test_server_and_client_agree_on_window(self):
        factory = lambda: DynamicPolicy(5, 2, [0.25] * 4, seed=11)
        server, clients, _ = build_deployment(factory)
        server.run(clients, cycles=4)
        for cycle, leakage in enumerate(clients[0].leakage_log):
            assert leakage.protected == server.policy.layers_for_cycle(cycle)


class TestHybridDeployment:
    def test_legacy_clients_train_unprotected(self):
        dataset = synthetic_cifar(num_samples=64, num_classes=NUM_CLASSES, seed=0)
        shards = dataset.shard(2)
        plan = TrainingPlan(lr=0.2, batch_size=16, local_steps=1)
        server = FLServer(
            lenet5(num_classes=NUM_CLASSES, seed=7, scale=0.5),
            plan,
            StaticPolicy(5, [2]),
            allow_legacy=True,
        )
        tee_client = FLClient(
            "tee", shards[0], lenet5(num_classes=NUM_CLASSES, seed=7, scale=0.5),
            policy=StaticPolicy(5, [2]), seed=0,
        )
        legacy = FLClient(
            "legacy", shards[1], lenet5(num_classes=NUM_CLASSES, seed=7, scale=0.5),
            has_tee=False, seed=1,
        )
        selection = server.select([tee_client, legacy])
        assert selection.admitted == ["tee"]
        assert selection.legacy == ["legacy"]
        updates = server.run_cycle([tee_client, legacy])
        # The legacy client's update is entirely plain.
        assert updates[1].sealed_weights is None
        # The TEE client's protected layer travelled sealed.
        assert updates[0].sealed_weights is not None


class TestSecureStorageIntegration:
    def test_client_data_round_trips_through_secure_storage(self):
        dataset = synthetic_cifar(num_samples=10, num_classes=3, seed=1)
        client = FLClient(
            "c", dataset, lenet5(num_classes=3, seed=0, scale=0.5), seed=0
        )
        loaded = client._load_data()
        np.testing.assert_array_equal(loaded.x, dataset.x)
        np.testing.assert_array_equal(loaded.y, dataset.y)

    def test_stored_blob_is_encrypted(self):
        dataset = synthetic_cifar(num_samples=10, num_classes=3, seed=1)
        client = FLClient(
            "c", dataset, lenet5(num_classes=3, seed=0, scale=0.5), seed=0
        )
        raw = client.storage.backend.get(client.storage.objects()[0])
        assert dataset.x.tobytes() not in raw
