"""Round executors: parallel rounds must aggregate the exact same global
weights as the sequential seed behaviour."""

import numpy as np
import pytest

from repro.core import StaticPolicy
from repro.data.synthetic import synthetic_cifar
from repro.fl import (
    FLClient,
    FLServer,
    ParallelRoundExecutor,
    SequentialRoundExecutor,
    TrainingPlan,
)
from repro.nn import lenet5
from repro.tee import CostModel


def _setup(num_clients=4, policy=None, seed=0):
    global_model = lenet5(num_classes=5, input_shape=(3, 8, 8), seed=seed)
    plan = TrainingPlan(lr=0.1, batch_size=8, local_steps=1)
    server = FLServer(global_model, plan, policy=policy)
    dataset = synthetic_cifar(
        num_samples=num_clients * 16, num_classes=5, shape=(3, 8, 8), seed=seed
    )
    clients = []
    for i, shard in enumerate(dataset.shard(num_clients)):
        client = FLClient(
            client_id=f"client-{i}",
            dataset=shard,
            model=global_model.clone(),
            cost_model=CostModel(batch_size=plan.batch_size),
            seed=50 + i,
        )
        server.register(client)
        clients.append(client)
    return server, clients


def _run_rounds(executor, rounds=2, **setup_kwargs):
    server, clients = _setup(**setup_kwargs)
    with executor:
        for _ in range(rounds):
            server.run_cycle(clients, executor=executor)
    return server.model.get_weights(), clients


def _assert_weights_equal(a, b):
    assert len(a) == len(b)
    for la, lb in zip(a, b):
        assert set(la) == set(lb)
        for key in la:
            assert np.array_equal(la[key], lb[key])


class TestParallelMatchesSequential:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_global_weights_identical(self, workers):
        seq, _ = _run_rounds(SequentialRoundExecutor())
        par, _ = _run_rounds(ParallelRoundExecutor(max_workers=workers))
        _assert_weights_equal(seq, par)

    def test_identical_under_protection_policy(self):
        policy = StaticPolicy(5, [2, 5])
        seq, seq_clients = _run_rounds(SequentialRoundExecutor(), policy=policy)
        par, par_clients = _run_rounds(
            ParallelRoundExecutor(max_workers=3), policy=policy
        )
        _assert_weights_equal(seq, par)
        # Leakage recording (what the attacks consume) is also unchanged.
        for sc, pc in zip(seq_clients, par_clients):
            assert len(sc.leakage_log) == len(pc.leakage_log)
            for sl, pl in zip(sc.leakage_log, pc.leakage_log):
                assert sl.protected == pl.protected

    def test_parallel_deterministic_across_runs(self):
        first, _ = _run_rounds(ParallelRoundExecutor(max_workers=4))
        second, _ = _run_rounds(ParallelRoundExecutor(max_workers=4))
        _assert_weights_equal(first, second)

    def test_server_default_executor_used(self):
        server, clients = _setup()
        server.executor = ParallelRoundExecutor(max_workers=2)
        server.run_cycle(clients)  # no explicit executor: uses server default
        seq, _ = _run_rounds(SequentialRoundExecutor(), rounds=1)
        _assert_weights_equal(server.model.get_weights(), seq)
        server.executor.close()


class TestExecutorBehaviour:
    def test_map_preserves_order(self):
        with ParallelRoundExecutor(max_workers=4) as executor:
            result = executor.map(lambda i: i * i, list(range(20)))
        assert result == [i * i for i in range(20)]

    def test_map_propagates_exceptions(self):
        def boom(i):
            if i == 3:
                raise RuntimeError("client failed")
            return i

        with ParallelRoundExecutor(max_workers=2) as executor:
            with pytest.raises(RuntimeError, match="client failed"):
                executor.map(boom, list(range(5)))

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParallelRoundExecutor(max_workers=0)

    def test_pool_reused_and_closed(self):
        executor = ParallelRoundExecutor(max_workers=2)
        executor.map(lambda i: i, [1, 2])
        pool = executor._pool
        executor.map(lambda i: i, [3, 4])
        assert executor._pool is pool  # persistent across rounds
        executor.close()
        assert executor._pool is None
        executor.close()  # idempotent
