"""Tests for the FL training monitor."""

import numpy as np
import pytest

from repro.fl import RoundRecord, TrainingMonitor
from repro.nn import mlp, one_hot


@pytest.fixture
def monitor_and_model(rng):
    x = rng.normal(size=(24, 6))
    y = one_hot(rng.integers(0, 4, 24), 4)
    model = mlp(num_classes=4, input_shape=(6,), hidden=(8,), seed=0)
    return TrainingMonitor(x, y, patience=2), model


class TestObserve:
    def test_records_metrics(self, monitor_and_model):
        monitor, model = monitor_and_model
        record = monitor.observe(model, cycle=0, participants=3)
        assert record.loss > 0
        assert 0 <= record.accuracy <= 1
        assert record.participants == 3
        assert record.update_norm == 0.0  # first observation

    def test_update_norm_tracks_weight_movement(self, monitor_and_model):
        monitor, model = monitor_and_model
        monitor.observe(model, 0, 1)
        model.layer(1).params["weight"].data += 0.5
        record = monitor.observe(model, 1, 1)
        assert record.update_norm > 0

    def test_no_movement_zero_norm(self, monitor_and_model):
        monitor, model = monitor_and_model
        monitor.observe(model, 0, 1)
        record = monitor.observe(model, 1, 1)
        assert record.update_norm == 0.0


class TestConvergence:
    def test_not_converged_before_patience(self, monitor_and_model):
        monitor, model = monitor_and_model
        monitor.observe(model, 0, 1)
        assert not monitor.converged()

    def test_converged_when_loss_plateaus(self, monitor_and_model):
        monitor, model = monitor_and_model
        for cycle in range(5):  # identical model: loss never improves
            monitor.observe(model, cycle, 1)
        assert monitor.converged()

    def test_improvement_resets_convergence(self, monitor_and_model):
        monitor, model = monitor_and_model
        x, y = monitor.x_eval, monitor.y_eval
        for cycle in range(4):
            # Actually train: loss keeps improving, so no convergence.
            _, grads = model.loss_and_gradients(x, y)
            for layer, g in zip(model.layers, grads):
                for key, grad_t in g.items():
                    layer.params[key].data -= 0.5 * grad_t.data
            monitor.observe(model, cycle, 1)
        assert not monitor.converged()


class TestReporting:
    def test_best_metrics(self, monitor_and_model):
        monitor, model = monitor_and_model
        monitor.observe(model, 0, 1)
        assert monitor.best_loss == monitor.records[0].loss
        assert monitor.best_accuracy == monitor.records[0].accuracy

    def test_best_requires_observations(self, monitor_and_model):
        monitor, _ = monitor_and_model
        with pytest.raises(ValueError):
            monitor.best_loss

    def test_summary_one_line_per_round(self, monitor_and_model):
        monitor, model = monitor_and_model
        for cycle in range(3):
            monitor.observe(model, cycle, 1)
        assert len(monitor.summary().splitlines()) == 4  # header + 3
