"""Tests for training plans, transport messages and snapshot history."""

import numpy as np
import pytest

from repro.fl import Channel, ClientUpdate, ModelDownload, SnapshotHistory, TrainingPlan
from repro.nn.serialize import flatten_weights


class TestTrainingPlan:
    def test_defaults_valid(self):
        plan = TrainingPlan()
        assert plan.batch_size == 32
        assert not plan.dynamic

    def test_dynamic_flag(self):
        plan = TrainingPlan(mw_size=2, v_mw=(0.5, 0.5))
        assert plan.dynamic

    def test_static_and_dynamic_exclusive(self):
        with pytest.raises(ValueError, match="exclusive"):
            TrainingPlan(protected_layers=(2,), mw_size=2, v_mw=(0.5, 0.5))

    def test_dynamic_requires_v_mw(self):
        with pytest.raises(ValueError, match="v_mw"):
            TrainingPlan(mw_size=2)

    @pytest.mark.parametrize("field,value", [("lr", 0), ("batch_size", 0), ("local_steps", 0)])
    def test_positive_fields(self, field, value):
        with pytest.raises(ValueError):
            TrainingPlan(**{field: value})

    def test_frozen(self):
        plan = TrainingPlan()
        with pytest.raises(AttributeError):
            plan.lr = 0.5


class TestTransport:
    def make_download(self, sealed=None):
        return ModelDownload(
            cycle=0,
            plain_weights=[{"weight": np.ones((2, 2))}],
            sealed_weights=sealed,
        )

    def test_wire_bytes_counts_plain(self):
        assert self.make_download().wire_bytes() > 0

    def test_wire_bytes_includes_sealed(self):
        plain_only = self.make_download().wire_bytes()
        with_sealed = self.make_download(sealed=b"x" * 100).wire_bytes()
        assert with_sealed == plain_only + 100

    def test_channel_accumulates(self):
        channel = Channel()
        channel.send_download(self.make_download())
        channel.send_update(
            ClientUpdate("c", 0, 4, [{"weight": np.zeros((2, 2))}], None)
        )
        assert channel.downloads == 1
        assert channel.uploads == 1
        assert channel.downlink_bytes > 0
        assert channel.uplink_bytes > 0


class TestSnapshotHistory:
    def make_history(self, values):
        history = SnapshotHistory()
        for v in values:
            history.record([{"weight": np.full((2, 2), float(v))}])
        return history

    def test_record_copies(self):
        weights = [{"weight": np.zeros((2, 2))}]
        history = SnapshotHistory()
        history.record(weights)
        weights[0]["weight"][:] = 9.0
        np.testing.assert_array_equal(history.snapshot(0)[0]["weight"], 0.0)

    def test_aggregated_gradients_formula(self):
        history = self.make_history([1.0, 0.5])
        grads = history.aggregated_gradients(0, lr=0.25)
        np.testing.assert_allclose(grads[0]["weight"], 2.0)  # (1 - 0.5) / 0.25

    def test_aggregated_gradients_range_checked(self):
        history = self.make_history([1.0])
        with pytest.raises(IndexError):
            history.aggregated_gradients(0)

    def test_lr_positive(self):
        history = self.make_history([1.0, 2.0])
        with pytest.raises(ValueError):
            history.aggregated_gradients(0, lr=0.0)

    def test_feature_matrix_shape(self):
        history = self.make_history([1.0, 2.0, 3.0])
        matrix = history.gradient_feature_matrix(lr=1.0)
        assert matrix.shape == (2, 4)

    def test_feature_matrix_empty(self):
        assert SnapshotHistory().gradient_feature_matrix().shape == (0, 0)

    def test_feature_rows_are_flat_gradients(self):
        history = self.make_history([2.0, 1.0])
        row = history.gradient_feature_matrix(lr=0.5)[0]
        expected = flatten_weights(history.aggregated_gradients(0, lr=0.5))
        np.testing.assert_array_equal(row, expected)
