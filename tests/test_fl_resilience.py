"""FL stack resilience: retries, quorum, re-attestation eviction, traffic."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core import NoProtection
from repro.data import synthetic_cifar
from repro.fl import (
    FLClient,
    FLServer,
    RetryPolicy,
    SequentialRoundExecutor,
    TrainingPlan,
    collect_with_retries,
)
from repro.nn import mlp

NUM_CLASSES = 4


def build_deployment(clients=3, seed=0, **server_kwargs):
    dataset = synthetic_cifar(
        num_samples=32 * clients, num_classes=NUM_CLASSES, shape=(3, 8, 8), seed=seed
    )
    shards = dataset.shard(clients)
    make_model = lambda: mlp(  # noqa: E731
        num_classes=NUM_CLASSES, input_shape=(3, 8, 8), hidden=(8,), seed=7
    )
    plan = TrainingPlan(lr=0.1, batch_size=8, local_steps=1)
    server = FLServer(make_model(), plan, NoProtection(2), **server_kwargs)
    fl_clients = [
        FLClient(f"client-{i}", shards[i], make_model(), seed=i)
        for i in range(clients)
    ]
    return server, fl_clients


class FlakyOnce(Exception):
    pass


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(quorum=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(quorum=1.5)

    def test_quorum_count(self):
        assert RetryPolicy(quorum=0.5).quorum_count(10) == 5
        assert RetryPolicy(quorum=0.5).quorum_count(9) == 5
        assert RetryPolicy(quorum=0.01).quorum_count(10) == 1

    def test_backoff_schedule_doubles(self):
        policy = RetryPolicy(max_retries=5, backoff_seconds=0.1)
        assert [policy.backoff_for(a) for a in (1, 2, 3, 4)] == [
            0.1, 0.2, 0.4, 0.8
        ]
        with pytest.raises(ValueError):
            policy.backoff_for(0)

    def test_bounded_backoff_caps_the_exponent(self):
        # the serve transport retransmits forever but its waits plateau at
        # the max_retries+1 step of the shared schedule
        policy = RetryPolicy(max_retries=2, backoff_seconds=0.5)
        assert policy.bounded_backoff_for(1) == policy.backoff_for(1)
        assert policy.bounded_backoff_for(3) == policy.backoff_for(3)
        assert policy.bounded_backoff_for(50) == policy.backoff_for(3)
        assert policy.bounded_backoff_for(0) == policy.backoff_for(1)


class TestCollectWithRetries:
    def test_transient_failures_recover(self):
        attempts = {}

        def flaky(item):
            attempts[item] = attempts.get(item, 0) + 1
            if item in ("b", "c") and attempts[item] == 1:
                raise FlakyOnce(item)
            return item.upper()

        with obs.fresh() as ctx:
            results = collect_with_retries(
                SequentialRoundExecutor(),
                flaky,
                ["a", "b", "c"],
                RetryPolicy(max_retries=1),
            )
            assert ctx.registry.counter("fl.retry.attempts").total() == 2
            assert ctx.registry.counter("fl.retry.giveups").total() == 0
        assert results == [(0, "A"), (1, "B"), (2, "C")]

    def test_permanent_failures_dropped_after_budget(self):
        def broken(item):
            if item == "bad":
                raise FlakyOnce(item)
            return item

        with obs.fresh() as ctx:
            results = collect_with_retries(
                SequentialRoundExecutor(),
                broken,
                ["ok", "bad", "fine"],
                RetryPolicy(max_retries=2),
                label_for=str,
            )
            assert ctx.registry.counter("fl.retry.attempts").total() == 2
            assert ctx.registry.counter("fl.retry.giveups").total() == 1
        assert results == [(0, "ok"), (2, "fine")]

    def test_results_in_item_order_regardless_of_recovery(self):
        calls = {"n": 0}

        def first_fails(item):
            calls["n"] += 1
            if item == 0 and calls["n"] == 1:
                raise FlakyOnce()
            return item * 10

        with obs.fresh():
            results = collect_with_retries(
                SequentialRoundExecutor(),
                first_fails,
                [0, 1, 2],
                RetryPolicy(max_retries=1),
            )
        assert results == [(0, 0), (1, 10), (2, 20)]

    def test_map_settled_pairs(self):
        def sometimes(x):
            if x % 2:
                raise FlakyOnce(x)
            return x

        with obs.fresh():
            settled = SequentialRoundExecutor().map_settled(
                sometimes, [0, 1, 2]
            )
        assert settled[0] == (0, None)
        assert settled[2] == (2, None)
        assert settled[1][0] is None
        assert isinstance(settled[1][1], FlakyOnce)


class TestServerResilience:
    def test_failing_client_no_longer_aborts_the_round(self):
        server, clients = build_deployment(retry=RetryPolicy(max_retries=0))
        clients[1].run_cycle = _always_raise  # type: ignore[assignment]
        with obs.fresh() as ctx:
            updates = server.run_cycle(clients)
            assert ctx.registry.counter("fl.retry.giveups").total() == 1
        assert [u.client_id for u in updates] == ["client-0", "client-2"]
        assert server.cycle == 1

    def test_fail_fast_without_retry_policy(self):
        server, clients = build_deployment()  # retry=None
        clients[1].run_cycle = _always_raise  # type: ignore[assignment]
        with obs.fresh():
            with pytest.raises(FlakyOnce):
                server.run_cycle(clients)

    def test_below_quorum_degrades_and_keeps_weights(self):
        server, clients = build_deployment(
            retry=RetryPolicy(max_retries=0, quorum=0.75)
        )
        for client in clients[1:]:
            client.run_cycle = _always_raise  # type: ignore[assignment]
        before = server.model.get_weights()
        with obs.fresh() as ctx:
            updates = server.run_cycle(clients)
            assert ctx.registry.counter("fl.rounds.degraded").total() == 1
        assert len(updates) == 1  # the survivor still reported
        after = server.model.get_weights()
        for wa, wb in zip(before, after):
            for key in wa:
                np.testing.assert_array_equal(wa[key], wb[key])
        # history still advanced (with the carried-over weights)
        assert len(server.history) == 2

    def test_quorum_met_aggregates_normally(self):
        server, clients = build_deployment(
            retry=RetryPolicy(max_retries=0, quorum=0.5)
        )
        clients[2].run_cycle = _always_raise  # type: ignore[assignment]
        before = server.model.get_weights()
        with obs.fresh():
            server.run_cycle(clients)
        changed = any(
            not np.array_equal(wa[key], wb[key])
            for wa, wb in zip(before, server.model.get_weights())
            for key in wa
        )
        assert changed


class TestReattestation:
    def test_tampered_client_evicted_in_later_round(self):
        """Satellite fix: a client failing attestation after admission must
        be evicted and counted, not silently trained on."""
        server, clients = build_deployment()
        with obs.fresh() as ctx:
            server.run_cycle(clients)  # round 0: everyone healthy
            # the device key is swapped between rounds — quotes no longer
            # verify against the key the server enrolled
            clients[1].device._key = b"\x00" * 32
            updates = server.run_cycle(clients)
            evicted = ctx.registry.counter("fl.selection.evicted")
            assert evicted.total() == 1
            assert evicted.value(client="client-1") == 1
        assert [u.client_id for u in updates] == ["client-0", "client-2"]

    def test_all_evicted_raises(self):
        server, clients = build_deployment(clients=2)
        with obs.fresh():
            server.run_cycle(clients)
            for client in clients:
                client.device._key = b"\x00" * 32
            with pytest.raises(ValueError, match="re-attestation"):
                server.run_cycle(clients)

    def test_reattest_disabled_keeps_old_behaviour(self):
        server, clients = build_deployment(reattest=False)
        with obs.fresh() as ctx:
            server.run_cycle(clients)
            clients[1].device._key = b"\x00" * 32
            updates = server.run_cycle(clients)  # nobody re-challenged
            assert ctx.registry.counter("fl.selection.evicted").total() == 0
        assert len(updates) == 3

    def test_unknown_clients_enrolled_on_first_cycle(self):
        server, clients = build_deployment()
        with obs.fresh():
            updates = server.run_cycle(clients)  # no select()/register() first
        assert len(updates) == 3


class TestTrafficCounters:
    def test_bytes_counted_per_client(self):
        server, clients = build_deployment()
        with obs.fresh() as ctx:
            server.run_cycle(clients)
            down = ctx.registry.counter("fl.bytes.down")
            up = ctx.registry.counter("fl.bytes.up")
            assert down.total() == server.channel.downlink_bytes
            assert up.total() == server.channel.uplink_bytes
            for client in clients:
                assert down.value(client=client.client_id) > 0
                assert up.value(client=client.client_id) > 0

    def test_seeded_server_sampling_is_reproducible(self):
        server_a, clients_a = build_deployment(seed=3)
        server_b, clients_b = build_deployment(seed=3)
        picked_a = server_a.sample_participants(clients_a, fraction=0.67)
        picked_b = server_b.sample_participants(clients_b, fraction=0.67)
        assert [c.client_id for c in picked_a] == [
            c.client_id for c in picked_b
        ]


def _always_raise(*args, **kwargs):
    raise FlakyOnce("injected client failure")
