"""Tests for Byzantine-robust aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fl.robust import coordinate_median, krum, trimmed_mean

settings.register_profile("ci", max_examples=20, deadline=None)
settings.load_profile("ci")


def honest_updates(n=5, d=8, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=d)
    return [base + 0.05 * rng.normal(size=d) for _ in range(n)]


class TestMedian:
    def test_matches_numpy_median(self):
        updates = honest_updates()
        np.testing.assert_array_equal(
            coordinate_median(updates), np.median(np.stack(updates), axis=0)
        )

    def test_resists_one_poisoned_update(self):
        updates = honest_updates()
        clean = coordinate_median(updates)
        poisoned = updates + [np.full(8, 1e6)]
        robust = coordinate_median(poisoned)
        assert np.abs(robust - clean).max() < 0.5

    def test_plain_mean_is_broken_by_the_same_attack(self):
        updates = honest_updates()
        poisoned = updates + [np.full(8, 1e6)]
        mean = np.mean(np.stack(poisoned), axis=0)
        assert np.abs(mean).max() > 1e4  # the contrast median avoids

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coordinate_median([])


class TestTrimmedMean:
    def test_equals_mean_without_outliers_when_symmetric(self):
        updates = [np.array([1.0]), np.array([2.0]), np.array([3.0]),
                   np.array([4.0]), np.array([5.0])]
        assert trimmed_mean(updates, trim=1)[0] == pytest.approx(3.0)

    def test_drops_extremes(self):
        updates = honest_updates()
        poisoned = updates + [np.full(8, 1e6), np.full(8, -1e6)]
        robust = trimmed_mean(poisoned, trim=1)
        assert np.abs(robust - coordinate_median(updates)).max() < 0.5

    def test_over_trimming_rejected(self):
        with pytest.raises(ValueError, match="trim"):
            trimmed_mean(honest_updates(n=4), trim=2)

    def test_negative_trim_rejected(self):
        with pytest.raises(ValueError):
            trimmed_mean(honest_updates(), trim=-1)


class TestKrum:
    def test_selects_an_actual_update(self):
        updates = honest_updates()
        out = krum(updates, num_byzantine=1)
        assert any(np.array_equal(out, u) for u in updates)

    def test_never_selects_the_outlier(self):
        updates = honest_updates(n=6)
        outlier = np.full(8, 100.0)
        out = krum(updates + [outlier], num_byzantine=1)
        assert not np.array_equal(out, outlier)

    def test_minimum_population_enforced(self):
        with pytest.raises(ValueError, match="f \\+ 3"):
            krum(honest_updates(n=3), num_byzantine=1)

    @given(st.integers(0, 50))
    def test_krum_result_close_to_honest_centre(self, seed):
        updates = honest_updates(n=6, seed=seed)
        centre = np.mean(np.stack(updates), axis=0)
        out = krum(updates + [np.full(8, 50.0)], num_byzantine=1)
        assert np.linalg.norm(out - centre) < 1.0
