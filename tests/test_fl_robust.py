"""Tests for Byzantine-robust aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fl.robust import (
    apply_rule,
    clipped_mean,
    coordinate_median,
    krum,
    krum_index,
    trimmed_mean,
)

settings.register_profile("ci", max_examples=20, deadline=None)
settings.load_profile("ci")


def honest_updates(n=5, d=8, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=d)
    return [base + 0.05 * rng.normal(size=d) for _ in range(n)]


class TestMedian:
    def test_matches_numpy_median(self):
        updates = honest_updates()
        np.testing.assert_array_equal(
            coordinate_median(updates), np.median(np.stack(updates), axis=0)
        )

    def test_resists_one_poisoned_update(self):
        updates = honest_updates()
        clean = coordinate_median(updates)
        poisoned = updates + [np.full(8, 1e6)]
        robust = coordinate_median(poisoned)
        assert np.abs(robust - clean).max() < 0.5

    def test_plain_mean_is_broken_by_the_same_attack(self):
        updates = honest_updates()
        poisoned = updates + [np.full(8, 1e6)]
        mean = np.mean(np.stack(poisoned), axis=0)
        assert np.abs(mean).max() > 1e4  # the contrast median avoids

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coordinate_median([])


class TestTrimmedMean:
    def test_equals_mean_without_outliers_when_symmetric(self):
        updates = [np.array([1.0]), np.array([2.0]), np.array([3.0]),
                   np.array([4.0]), np.array([5.0])]
        assert trimmed_mean(updates, trim=1)[0] == pytest.approx(3.0)

    def test_drops_extremes(self):
        updates = honest_updates()
        poisoned = updates + [np.full(8, 1e6), np.full(8, -1e6)]
        robust = trimmed_mean(poisoned, trim=1)
        assert np.abs(robust - coordinate_median(updates)).max() < 0.5

    def test_over_trimming_rejected(self):
        with pytest.raises(ValueError, match="trim"):
            trimmed_mean(honest_updates(n=4), trim=2)

    def test_negative_trim_rejected(self):
        with pytest.raises(ValueError):
            trimmed_mean(honest_updates(), trim=-1)


class TestKrum:
    def test_selects_an_actual_update(self):
        updates = honest_updates()
        out = krum(updates, num_byzantine=1)
        assert any(np.array_equal(out, u) for u in updates)

    def test_never_selects_the_outlier(self):
        updates = honest_updates(n=6)
        outlier = np.full(8, 100.0)
        out = krum(updates + [outlier], num_byzantine=1)
        assert not np.array_equal(out, outlier)

    def test_minimum_population_enforced(self):
        with pytest.raises(ValueError, match="f \\+ 3"):
            krum(honest_updates(n=3), num_byzantine=1)

    @given(st.integers(0, 50))
    def test_krum_result_close_to_honest_centre(self, seed):
        updates = honest_updates(n=6, seed=seed)
        centre = np.mean(np.stack(updates), axis=0)
        out = krum(updates + [np.full(8, 50.0)], num_byzantine=1)
        assert np.linalg.norm(out - centre) < 1.0


class TestKrumTieBreak:
    def test_duplicate_updates_pick_lowest_index(self):
        # Colluding attackers send bit-identical payloads, so several
        # updates share the exact minimal score; the winner must be the
        # lowest input index, deterministically.
        honest = honest_updates(n=4, d=6, seed=3)
        payload = np.full(6, 7.5)
        updates = [honest[0], payload, payload, payload, honest[1]]
        chosen = krum_index(updates, num_byzantine=1)
        assert chosen == 1
        np.testing.assert_array_equal(
            krum(updates, num_byzantine=1), updates[chosen]
        )

    def test_all_identical_updates_pick_index_zero(self):
        updates = [np.ones(4)] * 5
        assert krum_index(updates, num_byzantine=1) == 0

    def test_order_permutation_moves_the_tie(self):
        payload = np.zeros(3)
        far = np.full(3, 100.0)
        assert krum_index([payload, payload, payload, far], num_byzantine=1) == 0
        assert krum_index([far, payload, payload, payload], num_byzantine=1) == 1


class TestClippedMean:
    def test_self_calibrates_to_median_norm(self):
        updates = [np.array([1.0, 0.0]), np.array([0.0, 2.0]), np.array([300.0, 0.0])]
        result = clipped_mean(updates)
        # Median norm is 2: the outlier is rescaled from 300 to 2.
        expected = np.mean(
            [np.array([1.0, 0.0]), np.array([0.0, 2.0]), np.array([2.0, 0.0])],
            axis=0,
        )
        np.testing.assert_allclose(result, expected)

    def test_explicit_ceiling(self):
        updates = [np.array([3.0, 4.0]), np.array([0.3, 0.4])]
        result = clipped_mean(updates, clip_norm=1.0)
        np.testing.assert_allclose(result, np.array([0.45, 0.6]))

    def test_zero_ceiling_zeroes_everything(self):
        np.testing.assert_array_equal(
            clipped_mean([np.ones(3), np.full(3, -2.0)], clip_norm=0.0),
            np.zeros(3),
        )

    def test_negative_ceiling_rejected(self):
        with pytest.raises(ValueError):
            clipped_mean([np.ones(2)], clip_norm=-1.0)


class TestApplyRule:
    def test_dispatch_matches_direct_calls(self):
        updates = honest_updates(n=7, d=5, seed=11)
        np.testing.assert_array_equal(
            apply_rule("median", updates), coordinate_median(updates)
        )
        np.testing.assert_array_equal(
            apply_rule("trimmed_mean", updates, trim=2),
            trimmed_mean(updates, trim=2),
        )
        np.testing.assert_array_equal(
            apply_rule("krum", updates, num_byzantine=2),
            krum(updates, num_byzantine=2),
        )
        np.testing.assert_array_equal(
            apply_rule("clipped_fedavg", updates, clip_norm=0.5),
            clipped_mean(updates, clip_norm=0.5),
        )

    def test_trim_clamped_for_small_cohorts(self):
        updates = honest_updates(n=3, d=4, seed=1)
        # trim=5 would drop every row; the clamp keeps one.
        np.testing.assert_array_equal(
            apply_rule("trimmed_mean", updates, trim=5),
            trimmed_mean(updates, trim=1),
        )

    def test_krum_f_clamped_and_tiny_cohort_falls_back(self):
        updates = honest_updates(n=4, d=4, seed=2)
        np.testing.assert_array_equal(
            apply_rule("krum", updates, num_byzantine=10),
            krum(updates, num_byzantine=1),
        )
        pair = honest_updates(n=2, d=4, seed=2)
        np.testing.assert_array_equal(
            apply_rule("krum", pair, num_byzantine=1), coordinate_median(pair)
        )

    def test_fedavg_and_unknown_rules_rejected(self):
        with pytest.raises(ValueError):
            apply_rule("fedavg", [np.ones(2)])
        with pytest.raises(ValueError):
            apply_rule("mode", [np.ones(2)])
        with pytest.raises(ValueError):
            apply_rule("median", [])


class TestBlockedDistances:
    def test_blocked_matches_dense(self, monkeypatch):
        from repro.fl import robust as robust_mod

        rng = np.random.default_rng(5)
        matrix = rng.normal(size=(6, 40))
        dense = robust_mod._pairwise_sq_distances(matrix)
        # Force multiple blocks: 40 columns / 16-element blocks.
        monkeypatch.setattr(robust_mod, "_KRUM_BLOCK_ELEMENTS", 16)
        blocked = robust_mod._pairwise_sq_distances(matrix)
        np.testing.assert_array_equal(dense, blocked)
