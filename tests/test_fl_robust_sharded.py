"""Property-based tests: robust rules compose exactly with sharding.

The claims under test are the ones the robustness module documents:

* **flat equivalence** — a single-shard tree is bitwise identical to the
  pure rule over the same updates, for every rule;
* **routing invariance** — the reduced weights are a pure function of the
  *position-ordered* updates: shard count and routing cannot change them
  (gather rules sort by cohort position; the streaming trimmed mean is an
  error-free transformation of sums and candidate extremes);
* **honest-majority recovery** — with fewer attackers than the rule
  tolerates, the sharded robust aggregate lands near the honest centre
  however the cohort is routed.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fl import ShardingConfig, make_aggregation_tree
from repro.fl.robust import apply_rule
from repro.nn.serialize import flatten_weights

pytestmark = pytest.mark.property

settings.register_profile("ci", max_examples=25, deadline=None)
settings.load_profile("ci")

RULE_NAMES = ["median", "trimmed_mean", "krum", "clipped_fedavg"]


def make_updates(seed, num_clients, size, magnitude=3):
    rng = np.random.default_rng(seed)
    scales = 10.0 ** rng.integers(-magnitude, magnitude + 1, size=num_clients)
    updates = [
        [{"w": scales[i] * rng.normal(size=size), "b": rng.normal(size=2)}]
        for i in range(num_clients)
    ]
    counts = [int(c) for c in rng.integers(1, 50, size=num_clients)]
    return updates, counts


def reduce_tree(updates, counts, num_shards, rule, *, trim=1, f=1, order=None):
    template = updates[0]
    tree = make_aggregation_tree(
        template,
        ShardingConfig(num_shards=num_shards, track_memory=False),
        rule=rule,
        trim=trim,
        num_byzantine=f,
    )
    cohort = len(updates)
    positions = list(range(cohort)) if order is None else list(order)
    for position in positions:
        shard = tree.shard_for(position, cohort)
        tree.fold(shard, updates[position], counts[position], position=position)
    tree.partials()
    return flatten_weights(tree.reduce())


@given(
    seed=st.integers(0, 2**32 - 1),
    num_clients=st.integers(1, 16),
    size=st.integers(1, 9),
    rule=st.sampled_from(RULE_NAMES),
)
def test_single_shard_is_bitwise_the_pure_rule(seed, num_clients, size, rule):
    updates, counts = make_updates(seed, num_clients, size)
    flat_updates = [flatten_weights(u) for u in updates]
    pure = apply_rule(rule, flat_updates, trim=1, num_byzantine=1)
    sharded = reduce_tree(updates, counts, 1, rule)
    np.testing.assert_array_equal(pure, sharded)


@given(
    seed=st.integers(0, 2**32 - 1),
    num_clients=st.integers(1, 16),
    num_shards=st.integers(1, 24),
    size=st.integers(1, 9),
    rule=st.sampled_from(["median", "krum", "clipped_fedavg"]),
    magnitude=st.integers(0, 5),
)
def test_shard_count_and_arrival_order_never_change_the_bits(
    seed, num_clients, num_shards, size, rule, magnitude
):
    # Gather rules sort the collected union by cohort position, so any
    # topology and any arrival order reproduces the flat call exactly.
    updates, counts = make_updates(seed, num_clients, size, magnitude)
    reference = reduce_tree(updates, counts, 1, rule)
    rng = np.random.default_rng(seed ^ 0x5EED)
    order = rng.permutation(num_clients)
    permuted = reduce_tree(updates, counts, num_shards, rule, order=order)
    np.testing.assert_array_equal(reference, permuted)


@given(
    seed=st.integers(0, 2**32 - 1),
    num_shards=st.integers(2, 8),
    trim=st.integers(1, 4),
    magnitude=st.integers(0, 4),
)
def test_streaming_trimmed_mean_is_routing_invariant_and_correctly_rounded(
    seed, num_shards, trim, magnitude
):
    # The multi-shard trimmed path never gathers the cohort.  Its result
    # is the correctly rounded quotient of the *exact* trimmed sum, so it
    # is bitwise identical across every shard count >= 2 and every
    # arrival order — and bitwise equal to a math.fsum of the kept rows
    # (the strongest possible reference; np.mean's pairwise summation can
    # differ by an ulp under cancellation, which is why the pure-rule
    # bitwise claim applies to the flat tree only).
    updates, counts = make_updates(seed, num_clients=12, size=7, magnitude=magnitude)
    reference = reduce_tree(updates, counts, 2, "trimmed_mean", trim=trim)
    rng = np.random.default_rng(seed ^ 0x5EED)
    order = rng.permutation(len(updates))
    permuted = reduce_tree(
        updates, counts, num_shards, "trimmed_mean", trim=trim, order=order
    )
    np.testing.assert_array_equal(reference, permuted)

    matrix = np.stack([flatten_weights(u) for u in updates])
    kept = np.sort(matrix, axis=0)[trim : matrix.shape[0] - trim]
    exact = np.array(
        [math.fsum(kept[:, j]) for j in range(matrix.shape[1])]
    ) / kept.shape[0]
    np.testing.assert_array_equal(reference, exact)


@given(
    seed=st.integers(0, 2**32 - 1),
    num_shards=st.integers(1, 8),
    rule=st.sampled_from(["median", "trimmed_mean", "krum"]),
)
def test_honest_majority_recovers_under_any_routing(seed, num_shards, rule):
    rng = np.random.default_rng(seed)
    centre = rng.normal(size=6)
    honest = [
        [{"w": centre + 0.01 * rng.normal(size=6), "b": np.zeros(2)}]
        for _ in range(9)
    ]
    hostile = [
        [{"w": np.full(6, 1e6), "b": np.zeros(2)}] for _ in range(2)
    ]
    updates = honest + hostile
    counts = [1] * len(updates)
    order = rng.permutation(len(updates))
    result = reduce_tree(
        updates, counts, num_shards, rule, trim=2, f=2, order=order
    )
    # flatten_weights orders keys alphabetically: "b" (2) then "w" (6).
    assert np.linalg.norm(result[2:] - centre) < 0.1
