"""Tests for client sampling and non-IID data sharding."""

import numpy as np
import pytest

from repro.core import NoProtection
from repro.data import synthetic_cifar
from repro.fl import FLClient, FLServer, TrainingPlan
from repro.nn import lenet5


class TestDirichletShard:
    @pytest.fixture
    def dataset(self):
        return synthetic_cifar(num_samples=300, num_classes=6, seed=0)

    def test_partition_is_complete_and_disjoint(self, dataset):
        shards = dataset.dirichlet_shard(4, alpha=0.5)
        total = sum(len(s) for s in shards)
        assert total == len(dataset)

    def test_no_empty_shards(self, dataset):
        shards = dataset.dirichlet_shard(8, alpha=0.1, rng=np.random.default_rng(3))
        assert all(len(s) > 0 for s in shards)

    def test_small_alpha_skews_label_distributions(self, dataset):
        """With tiny alpha, shards specialise in few classes."""
        skewed = dataset.dirichlet_shard(4, alpha=0.05, rng=np.random.default_rng(0))
        iid = dataset.dirichlet_shard(4, alpha=100.0, rng=np.random.default_rng(0))

        def label_entropy(shard):
            counts = np.bincount(shard.y, minlength=6) + 1e-12
            p = counts / counts.sum()
            return float(-(p * np.log(p)).sum())

        assert np.mean([label_entropy(s) for s in skewed]) < np.mean(
            [label_entropy(s) for s in iid]
        )

    def test_invalid_params_rejected(self, dataset):
        with pytest.raises(ValueError):
            dataset.dirichlet_shard(0)
        with pytest.raises(ValueError):
            dataset.dirichlet_shard(2, alpha=0.0)

    def test_deterministic_per_rng(self, dataset):
        a = dataset.dirichlet_shard(3, rng=np.random.default_rng(5))
        b = dataset.dirichlet_shard(3, rng=np.random.default_rng(5))
        for sa, sb in zip(a, b):
            np.testing.assert_array_equal(sa.y, sb.y)


class TestClientSampling:
    def make_server_and_pool(self, n_clients=5):
        dataset = synthetic_cifar(num_samples=20 * n_clients, num_classes=4, seed=0)
        shards = dataset.shard(n_clients)
        plan = TrainingPlan(lr=0.1, batch_size=10, local_steps=1)
        server = FLServer(lenet5(num_classes=4, seed=1, scale=0.5), plan, NoProtection(5))
        pool = [
            FLClient(f"c{i}", shards[i], lenet5(num_classes=4, seed=1, scale=0.5), seed=i)
            for i in range(n_clients)
        ]
        return server, pool

    def test_sample_size(self):
        server, pool = self.make_server_and_pool()
        sampled = server.sample_participants(pool, 0.4, np.random.default_rng(0))
        assert len(sampled) == 2

    def test_at_least_one_sampled(self):
        server, pool = self.make_server_and_pool()
        assert len(server.sample_participants(pool, 0.01)) == 1

    def test_fraction_validated(self):
        server, pool = self.make_server_and_pool()
        with pytest.raises(ValueError):
            server.sample_participants(pool, 0.0)
        with pytest.raises(ValueError):
            server.sample_participants(pool, 1.5)

    def test_empty_pool_rejected(self):
        server, _ = self.make_server_and_pool()
        with pytest.raises(ValueError):
            server.sample_participants([], 0.5)

    def test_run_sampled_advances_cycles(self):
        server, pool = self.make_server_and_pool(3)
        server.run_sampled(pool, cycles=2, fraction=0.7)
        assert server.cycle == 2
        assert len(server.history) == 3

    def test_sampling_varies_across_cycles(self):
        server, pool = self.make_server_and_pool(5)
        rng = np.random.default_rng(1)
        draws = {
            tuple(c.client_id for c in server.sample_participants(pool, 0.4, rng))
            for _ in range(10)
        }
        assert len(draws) > 1
