"""Tests for pairwise-masking secure aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fl import PairwiseMasker, aggregate_masked, mask_update

settings.register_profile("ci", max_examples=20, deadline=None)
settings.load_profile("ci")

SECRET = b"group-secret"


def make_maskers(ids):
    return {i: PairwiseMasker(i, ids, SECRET) for i in ids}


class TestPairwiseMasking:
    def test_masks_cancel_in_aggregate(self):
        ids = ["a", "b", "c"]
        maskers = make_maskers(ids)
        updates = {i: np.full(8, float(k)) for k, i in enumerate(ids)}
        masked = [mask_update(updates[i], maskers[i]) for i in ids]
        total = aggregate_masked(masked)
        np.testing.assert_allclose(total, sum(updates.values()), atol=1e-9)

    def test_individual_update_is_hidden(self):
        ids = ["a", "b"]
        maskers = make_maskers(ids)
        update = np.zeros(16)
        masked = mask_update(update, maskers["a"])
        # The masked vector differs substantially from the plaintext.
        assert np.linalg.norm(masked - update) > 1.0

    def test_pair_masks_are_antisymmetric(self):
        maskers = make_maskers(["a", "b"])
        np.testing.assert_allclose(
            maskers["a"].mask(8), -maskers["b"].mask(8), atol=1e-12
        )

    def test_client_must_be_among_peers(self):
        with pytest.raises(ValueError, match="among peers"):
            PairwiseMasker("zz", ["a", "b"], SECRET)

    def test_different_secret_breaks_cancellation(self):
        a = PairwiseMasker("a", ["a", "b"], b"secret-1")
        b = PairwiseMasker("b", ["a", "b"], b"secret-2")
        total = a.mask(8) + b.mask(8)
        assert np.abs(total).max() > 1e-6

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_masked([])

    @given(st.integers(2, 6), st.integers(0, 50))
    def test_cancellation_property(self, n_clients, seed):
        ids = [f"c{i}" for i in range(n_clients)]
        maskers = make_maskers(ids)
        rng = np.random.default_rng(seed)
        updates = {i: rng.normal(size=12) for i in ids}
        masked = [mask_update(updates[i], maskers[i]) for i in ids]
        np.testing.assert_allclose(
            aggregate_masked(masked), sum(updates.values()), atol=1e-8
        )
