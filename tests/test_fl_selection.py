"""Tests for attestation-gated client selection."""

import pytest

from repro.core import StaticPolicy
from repro.data import synthetic_cifar
from repro.fl import FLClient, TEESelector
from repro.nn import mlp
from repro.tee import AttestationVerifier


def make_client(client_id, has_tee=True, seed=0):
    dataset = synthetic_cifar(num_samples=8, num_classes=3, seed=seed)
    model = mlp(num_classes=3, input_shape=(3, 32, 32), hidden=(4,), seed=seed)
    return FLClient(client_id, dataset, model, has_tee=has_tee, seed=seed)


def make_verifier(clients):
    verifier = AttestationVerifier()
    for client in clients:
        verifier.register_device(client.client_id, client.device.key)
        verifier.allow_measurement(client.ta_measurement())
    return verifier


class TestTEESelector:
    def test_admits_attested_tee_clients(self):
        clients = [make_client("a"), make_client("b")]
        selector = TEESelector(make_verifier(clients))
        result = selector.select(clients)
        assert result.admitted == ["a", "b"]
        assert result.rejected == []

    def test_rejects_non_tee_clients(self):
        clients = [make_client("a"), make_client("legacy", has_tee=False)]
        selector = TEESelector(make_verifier(clients))
        result = selector.select(clients)
        assert result.admitted == ["a"]
        assert result.rejected == [("legacy", "no TEE")]

    def test_hybrid_mode_admits_legacy_separately(self):
        clients = [make_client("a"), make_client("legacy", has_tee=False)]
        selector = TEESelector(make_verifier(clients), allow_legacy=True)
        result = selector.select(clients)
        assert result.admitted == ["a"]
        assert result.legacy == ["legacy"]
        assert result.rejected == []

    def test_rejects_unknown_device(self):
        known = make_client("a")
        unknown = make_client("ghost")
        selector = TEESelector(make_verifier([known]))
        result = selector.select([known, unknown])
        assert result.admitted == ["a"]
        assert result.rejected[0][0] == "ghost"

    def test_rejects_unapproved_measurement(self):
        client = make_client("a")
        verifier = AttestationVerifier()
        verifier.register_device("a", client.device.key)
        # measurement not allow-listed
        result = TEESelector(verifier).select([client])
        assert result.admitted == []
        assert "allow-list" in result.rejected[0][1]


class TestClientPolicyGuard:
    def test_legacy_client_cannot_take_protected_policy(self):
        dataset = synthetic_cifar(num_samples=8, num_classes=3, seed=0)
        model = mlp(num_classes=3, input_shape=(3, 32, 32), hidden=(4,), seed=0)
        with pytest.raises(ValueError, match="no TEE"):
            FLClient(
                "legacy",
                dataset,
                model,
                policy=StaticPolicy(2, [1]),
                has_tee=False,
            )
