"""Server end-to-end: robust rules + admission against hostile clients.

The deployment-level claims: a sign-flip minority visibly drags plain
FedAvg away from the honest aggregate while ``median``/``krum`` stay
close (sign-flips preserve the update norm, so only the rule can stop
them); a norm-inflating client is stopped at the admission gate instead,
and repeated rejections walk it through quarantine to eviction.
"""

import numpy as np
import pytest

from repro.core import NoProtection
from repro.data import synthetic_cifar
from repro.fl import (
    AdmissionConfig,
    FLClient,
    FLServer,
    ReputationConfig,
    RoundConfig,
    ServerConfig,
    TrainingPlan,
)
from repro.nn import lenet5
from repro.nn.serialize import flatten_weights
from repro.obs import FakeClock, fresh

NUM_CLASSES = 5


@pytest.fixture
def obs_ctx():
    with fresh(clock=FakeClock()) as ctx:
        yield ctx


class SignFlipClient(FLClient):
    """Trains honestly, then reflects its update across the global weights."""

    def run_cycle(self, download, plan):
        update = super().run_cycle(download, plan)
        flipped = [
            {key: 2.0 * reference[key] - value for key, value in layer.items()}
            if layer
            else layer
            for layer, reference in zip(update.plain_weights, download.plain_weights)
        ]
        return update.__class__(
            client_id=update.client_id,
            cycle=update.cycle,
            num_samples=update.num_samples,
            plain_weights=flipped,
            sealed_weights=update.sealed_weights,
        )


class ScalingClient(FLClient):
    """Inflates its delta from the global weights by a large factor."""

    def __init__(self, *args, factor=50.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.factor = factor

    def run_cycle(self, download, plan):
        update = super().run_cycle(download, plan)
        scaled = [
            {
                key: reference[key] + self.factor * (value - reference[key])
                for key, value in layer.items()
            }
            if layer
            else layer
            for layer, reference in zip(update.plain_weights, download.plain_weights)
        ]
        return update.__class__(
            client_id=update.client_id,
            cycle=update.cycle,
            num_samples=update.num_samples,
            plain_weights=scaled,
            sealed_weights=update.sealed_weights,
        )


def build_fleet(
    rule="fedavg",
    hostile=0,
    client_cls=SignFlipClient,
    config=None,
    clients=6,
    iid=False,
):
    # ``iid=True`` hands every client the full dataset (they draw different
    # seeded batches): honest updates then agree closely, which isolates
    # the attack's effect on the aggregate from data heterogeneity.
    dataset = synthetic_cifar(num_samples=96, num_classes=NUM_CLASSES, seed=0)
    shards = dataset.shard(clients)
    global_model = lenet5(num_classes=NUM_CLASSES, seed=7, scale=0.5)
    plan = TrainingPlan(lr=0.2, batch_size=16, local_steps=1)
    cfg = config or ServerConfig(round=RoundConfig(rule=rule))
    server = FLServer(global_model, plan, policy=NoProtection(5), config=cfg)
    fleet = []
    for i in range(clients):
        cls = client_cls if i < hostile else FLClient
        fleet.append(
            cls(
                f"client-{i}",
                dataset if iid else shards[i],
                lenet5(num_classes=NUM_CLASSES, seed=7, scale=0.5),
                policy=NoProtection(5),
                seed=i,
            )
        )
    return server, fleet


def final_flat(server):
    return flatten_weights(server.model.get_weights())


class TestRobustRulesEndToEnd:
    def one_cycle_shift(self, rule):
        """How far 2/8 sign-flippers move one cycle's aggregate."""
        aggregates = {}
        for hostile in (0, 2):
            with fresh(clock=FakeClock()):
                cfg = ServerConfig(
                    round=RoundConfig(rule=rule, trim=2, num_byzantine=2)
                )
                server, fleet = build_fleet(
                    config=cfg, hostile=hostile, clients=8, iid=True
                )
                server.run_cycle(fleet)
                aggregates[hostile] = final_flat(server)
        return float(np.linalg.norm(aggregates[2] - aggregates[0]))

    def test_sign_flip_moves_fedavg_but_not_median_or_trimmed(self, obs_ctx):
        # SignFlipClient trains honestly first, so the hostile/honest runs
        # differ only in the flip — the shift isolates the attack's pull.
        fedavg_shift = self.one_cycle_shift("fedavg")
        assert fedavg_shift > 2 * self.one_cycle_shift("median")
        assert fedavg_shift > 2 * self.one_cycle_shift("trimmed_mean")

    def test_krum_selects_an_honest_update(self, obs_ctx):
        cfg = ServerConfig(round=RoundConfig(rule="krum", num_byzantine=2))
        server, fleet = build_fleet(config=cfg, hostile=2, clients=8, iid=True)
        merged = {}
        original = server._merge_update

        def spy(client, update):
            weights = original(client, update)
            merged[client.client_id] = flatten_weights(weights)
            return weights

        server._merge_update = spy
        server.run_cycle(fleet)
        aggregate = final_flat(server)
        winners = [
            cid for cid, w in merged.items() if np.array_equal(w, aggregate)
        ]
        assert len(winners) == 1
        assert winners[0] not in ("client-0", "client-1")  # the flippers

    def test_rule_recorded_in_metrics(self, obs_ctx):
        server, fleet = build_fleet(rule="median")
        server.run_cycle(fleet)
        counter = obs_ctx.registry.counter("fl.aggregate.rule")
        assert counter.series() == {"rule=median": 1.0}


class TestAdmissionEndToEnd:
    def admission_config(self, **reputation):
        return ServerConfig(
            round=RoundConfig(
                admission=AdmissionConfig(max_norm=5.0),
                reputation=ReputationConfig(**reputation) if reputation else None,
            )
        )

    def test_scaled_update_rejected_and_excluded(self, obs_ctx):
        config = self.admission_config()
        server, fleet = build_fleet(
            hostile=1, client_cls=ScalingClient, config=config
        )
        server.run_cycle(fleet)
        rejected = obs_ctx.registry.counter("fl.admission.rejected")
        assert rejected.total() == 1
        assert server.reputation.status("client-0", server.cycle) == "ok"

        # The same fleet *without* the attacker aggregates to the same
        # global weights: the rejected update left no trace in the fold.
        with fresh(clock=FakeClock()):
            clean_server, clean_fleet = build_fleet(config=self.admission_config())
            clean_server.run_cycle(clean_fleet[1:])
        np.testing.assert_array_equal(
            final_flat(server), final_flat(clean_server)
        )

    def test_repeat_offender_quarantined_then_evicted(self, obs_ctx):
        config = self.admission_config(
            max_strikes=2, quarantine_rounds=1, evict_after=2
        )
        server, fleet = build_fleet(
            hostile=1, client_cls=ScalingClient, config=config
        )
        statuses = []
        for _ in range(6):
            server.run_cycle(fleet)
            statuses.append(server.reputation.status("client-0", server.cycle))
        assert "quarantined" in statuses
        assert statuses[-1] == "evicted"
        blocked = obs_ctx.registry.counter("fl.reputation.blocked")
        assert blocked.total() > 0

    def test_all_quarantined_cohort_raises(self, obs_ctx):
        config = self.admission_config(
            max_strikes=1, quarantine_rounds=10, evict_after=10
        )
        server, fleet = build_fleet(
            hostile=6, client_cls=ScalingClient, config=config
        )
        server.run_cycle(fleet)  # everyone strikes out
        with pytest.raises(ValueError, match="quarantined"):
            server.run_cycle(fleet)
