"""Tests for hierarchical (sharded) aggregation with streaming reduce."""

import numpy as np
import pytest

from repro.fl import (
    HierarchicalAggregator,
    ShardAggregator,
    ShardingConfig,
    TopKCompressor,
    fedavg,
    plan_shards,
    shard_of,
    weighted_sparse_mean,
)
from repro.obs import fresh


def make_update(seed, layers=3, size=7):
    rng = np.random.default_rng(seed)
    return [
        {"w": rng.normal(size=size), "b": rng.normal(size=2)}
        for _ in range(layers)
    ]


def assert_weights_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.keys() == b.keys()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])


class TestPlanShards:
    def test_balanced_contiguous(self):
        ranges = plan_shards(10, 3)
        assert [list(r) for r in ranges] == [
            [0, 1, 2, 3], [4, 5, 6], [7, 8, 9]
        ]

    def test_covers_every_item_exactly_once(self):
        for items in (0, 1, 5, 17, 64):
            for shards in (1, 2, 7, 64, 100):
                ranges = plan_shards(items, shards)
                assert len(ranges) == shards
                flat = [i for r in ranges for i in r]
                assert flat == list(range(items))

    def test_more_shards_than_items_leaves_empties(self):
        ranges = plan_shards(3, 8)
        assert sum(len(r) > 0 for r in ranges) == 3

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            plan_shards(-1, 2)
        with pytest.raises(ValueError):
            plan_shards(4, 0)

    def test_shard_of_matches_plan(self):
        for items in (1, 5, 17, 64):
            for shards in (1, 2, 7, 64):
                ranges = plan_shards(items, shards)
                for shard_id, members in enumerate(ranges):
                    for item in members:
                        assert shard_of(item, items, shards) == shard_id

    def test_shard_of_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            shard_of(5, 5, 2)


class TestHierarchicalReduce:
    def test_single_shard_matches_fedavg(self):
        updates = [make_update(i) for i in range(5)]
        counts = [1, 3, 2, 8, 1]
        tree = HierarchicalAggregator(updates[0])
        for update, count in zip(updates, counts):
            tree.fold(0, update, count)
        assert_weights_equal(tree.reduce(), fedavg(updates, counts))

    @pytest.mark.parametrize("num_shards", [2, 3, 7, 16])
    def test_sharded_bitwise_identical_to_flat(self, num_shards):
        updates = [make_update(i, size=11) for i in range(13)]
        counts = [1 + (i * 7) % 5 for i in range(13)]
        flat = fedavg(updates, counts)
        tree = HierarchicalAggregator(
            updates[0], ShardingConfig(num_shards=num_shards)
        )
        for position, (update, count) in enumerate(zip(updates, counts)):
            tree.fold(tree.shard_for(position, 13), update, count)
        assert_weights_equal(tree.reduce(), flat)

    def test_result_independent_of_routing(self):
        updates = [make_update(i) for i in range(9)]
        counts = [2] * 9
        reference = fedavg(updates, counts)
        # Adversarial routing: everything on the last shard, then striped.
        for router in (lambda p: 3, lambda p: p % 4):
            tree = HierarchicalAggregator(
                updates[0], ShardingConfig(num_shards=4)
            )
            for position, (update, count) in enumerate(zip(updates, counts)):
                tree.fold(router(position), update, count)
            assert_weights_equal(tree.reduce(), reference)

    def test_empty_tree_rejected(self):
        tree = HierarchicalAggregator(make_update(0), ShardingConfig(num_shards=4))
        with pytest.raises(ValueError, match="no client weights"):
            tree.reduce()

    def test_sparse_folds_match_dense(self):
        size = 40
        compressor = TopKCompressor(ratio=0.25, error_feedback=False)
        rng = np.random.default_rng(5)
        flats = [rng.normal(size=size) for _ in range(6)]
        sparse = [compressor.compress(f, f"c{i}") for i, f in enumerate(flats)]
        counts = [3, 1, 4, 1, 5, 9]
        template = [{"w": np.zeros(size)}]
        tree = HierarchicalAggregator(template, ShardingConfig(num_shards=3))
        for position, (update, count) in enumerate(zip(sparse, counts)):
            tree.fold_sparse(tree.shard_for(position, 6), update, count)
        expected = weighted_sparse_mean(sparse, counts)
        np.testing.assert_array_equal(tree.reduce()[0]["w"], expected)


class TestBoundedMemory:
    def test_peak_bytes_independent_of_cohort_size(self):
        template = make_update(0)
        peaks = []
        for cohort in (4, 32, 256):
            tree = HierarchicalAggregator(template, ShardingConfig(num_shards=4))
            for position in range(cohort):
                tree.fold(
                    tree.shard_for(position, cohort),
                    make_update(position),
                    1 + position % 3,
                )
            tree.reduce()
            peaks.append(tree.peak_bytes)
        # O(model size), not O(clients x model): folding 64x the clients
        # must not grow the resident accumulator.
        assert peaks[0] == peaks[1] == peaks[2]
        assert peaks[0] > 0

    def test_peak_accounts_for_root_merge(self):
        template = make_update(0)
        tree = HierarchicalAggregator(template, ShardingConfig(num_shards=8))
        for position in range(16):
            tree.fold(tree.shard_for(position, 16), make_update(position), 2)
        tree.reduce()
        assert tree.root_peak_bytes > 0
        assert tree.peak_bytes >= tree.root_peak_bytes


class TestObservability:
    def test_fold_and_partial_metrics(self):
        with fresh() as ctx:
            tree = HierarchicalAggregator(
                make_update(0), ShardingConfig(num_shards=2)
            )
            for position in range(4):
                tree.fold(tree.shard_for(position, 4), make_update(position), 1)
            partials = tree.partials()
            tree.reduce()
            snap = ctx.registry.snapshot()
        assert sum(snap["counters"]["fl.shard.folds"].values()) == 4
        assert sum(snap["counters"]["fl.shard.partial_bytes"].values()) == sum(
            p.wire_bytes() for p in partials
        )
        assert "fl.shard.bytes.live" in snap["gauges"]
        spans = {s["name"] for s in ctx.tracer.export()["spans"]}
        assert "fl.shard.reduce" in spans

    def test_track_memory_off_suppresses_gauges(self):
        with fresh() as ctx:
            tree = HierarchicalAggregator(
                make_update(0), ShardingConfig(num_shards=2, track_memory=False)
            )
            tree.fold(0, make_update(1), 1)
            snap = ctx.registry.snapshot()
        assert "fl.shard.bytes.live" not in snap["gauges"]
        # Folds are still counted -- only the per-fold gauges are elided.
        assert sum(snap["counters"]["fl.shard.folds"].values()) == 1


class TestShardPartial:
    def test_wire_bytes_positive_and_component_scaling(self):
        shard = ShardAggregator(0, make_update(0))
        shard.fold(make_update(1), 2)
        partial = shard.partial()
        assert partial.shard_id == 0
        assert partial.total_samples == 2
        assert partial.folds == 1
        assert partial.wire_bytes() > 0

    def test_partial_is_a_snapshot(self):
        shard = ShardAggregator(0, make_update(0))
        shard.fold(make_update(1), 2)
        partial = shard.partial()
        before = [c.copy() for c in partial.components]
        shard.fold(make_update(2), 1)
        for original, snapshot in zip(before, partial.components):
            np.testing.assert_array_equal(original, snapshot)
