"""Property-based tests: the sharded streaming reduce is exactly FedAvg.

The claim under test is the strong one the sharding module documents:
because every fold and merge is an error-free transformation, the final
weights are a pure function of the multiset of client updates — bitwise
independent of shard count, shard sizes (single-client shards included),
routing, and merge shape.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fl import (
    HierarchicalAggregator,
    ShardingConfig,
    TopKCompressor,
    fedavg,
    weighted_sparse_mean,
)

pytestmark = pytest.mark.property

settings.register_profile("ci", max_examples=25, deadline=None)
settings.load_profile("ci")


def make_updates(seed, num_clients, size, magnitude):
    rng = np.random.default_rng(seed)
    scales = 10.0 ** rng.integers(-magnitude, magnitude + 1, size=num_clients)
    updates = [
        [{"w": scales[i] * rng.normal(size=size), "b": rng.normal(size=2)}]
        for i in range(num_clients)
    ]
    counts = [int(c) for c in rng.integers(1, 50, size=num_clients)]
    return updates, counts


@given(
    seed=st.integers(0, 2**32 - 1),
    num_clients=st.integers(1, 24),
    num_shards=st.integers(1, 32),
    size=st.integers(1, 17),
    magnitude=st.integers(0, 6),
)
def test_sharded_reduce_is_bitwise_fedavg(
    seed, num_clients, num_shards, size, magnitude
):
    updates, counts = make_updates(seed, num_clients, size, magnitude)
    flat = fedavg(updates, counts)
    tree = HierarchicalAggregator(
        updates[0], ShardingConfig(num_shards=num_shards, track_memory=False)
    )
    for position, (update, count) in enumerate(zip(updates, counts)):
        tree.fold(tree.shard_for(position, num_clients), update, count)
    sharded = tree.reduce()
    for left, right in zip(sharded, flat):
        for key in left:
            np.testing.assert_array_equal(left[key], right[key])


@given(
    seed=st.integers(0, 2**32 - 1),
    num_clients=st.integers(2, 16),
    size=st.integers(4, 40),
)
def test_single_client_shards_are_exact(seed, num_clients, size):
    # Degenerate topology: as many shards as clients, one fold each.
    updates, counts = make_updates(seed, num_clients, size, 3)
    flat = fedavg(updates, counts)
    tree = HierarchicalAggregator(
        updates[0],
        ShardingConfig(num_shards=num_clients, track_memory=False),
    )
    for position, (update, count) in enumerate(zip(updates, counts)):
        tree.fold(position, update, count)
    for left, right in zip(tree.reduce(), flat):
        for key in left:
            np.testing.assert_array_equal(left[key], right[key])


@given(
    seed=st.integers(0, 2**32 - 1),
    num_clients=st.integers(1, 12),
    num_shards=st.integers(1, 12),
    size=st.integers(8, 64),
    ratio=st.floats(0.05, 1.0),
)
def test_sparse_topk_folds_match_flat_sparse_mean(
    seed, num_clients, num_shards, size, ratio
):
    rng = np.random.default_rng(seed)
    compressor = TopKCompressor(ratio=ratio, error_feedback=False)
    flats = [rng.normal(size=size) for _ in range(num_clients)]
    sparse = [
        compressor.compress(flat, f"client-{i}") for i, flat in enumerate(flats)
    ]
    counts = [int(c) for c in rng.integers(1, 20, size=num_clients)]
    expected = weighted_sparse_mean(sparse, counts)
    template = [{"w": np.zeros(size)}]
    tree = HierarchicalAggregator(
        template, ShardingConfig(num_shards=num_shards, track_memory=False)
    )
    for position, (update, count) in enumerate(zip(sparse, counts)):
        tree.fold_sparse(
            tree.shard_for(position, num_clients), update, count
        )
    np.testing.assert_array_equal(tree.reduce()[0]["w"], expected)


@given(
    seed=st.integers(0, 2**32 - 1),
    num_clients=st.integers(2, 12),
    size=st.integers(1, 16),
)
def test_routing_cannot_change_the_result(seed, num_clients, size):
    updates, counts = make_updates(seed, num_clients, size, 4)
    rng = np.random.default_rng(seed ^ 0xC0FFEE)
    tree_a = HierarchicalAggregator(
        updates[0], ShardingConfig(num_shards=4, track_memory=False)
    )
    tree_b = HierarchicalAggregator(
        updates[0], ShardingConfig(num_shards=4, track_memory=False)
    )
    routes = rng.integers(0, 4, size=num_clients)
    order = rng.permutation(num_clients)
    for position in range(num_clients):
        tree_a.fold(int(routes[position]), updates[position], counts[position])
    for position in order:  # different routing AND different arrival order
        tree_b.fold(
            int(position) % 4, updates[position], counts[position]
        )
    for left, right in zip(tree_a.reduce(), tree_b.reduce()):
        for key in left:
            np.testing.assert_array_equal(left[key], right[key])
