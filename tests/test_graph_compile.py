"""Graph IR, optimization passes, memory planner, and plan-cache tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.ir import Node, Program
from repro.graph.passes import (
    eliminate_dead_code,
    fuse_elementwise,
    liveness,
    optimize,
    plan_buffers,
)
from repro.graph.vm import (
    VM,
    compile_model_step,
    plan_cache_clear,
    plan_cache_stats,
    trace_callable,
)
from repro.nn import lenet5, mlp, one_hot
from repro.obs import fresh


def _simple_program():
    """(a + b) * a, then neg — placeholders 0, 1."""
    shapes = {i: (4,) for i in range(5)}
    dtypes = {i: "float64" for i in range(5)}
    nodes = [
        Node("add", {}, (0, 1), (2,)),
        Node("mul", {}, (2, 0), (3,)),
        Node("neg", {}, (3,), (4,)),
    ]
    return Program(nodes, 5, [0, 1], {}, [4], shapes, dtypes)


class TestProgramValidation:
    def test_use_before_def_raises(self):
        with pytest.raises(ValueError, match="before it is defined"):
            Program([Node("neg", {}, (7,), (1,))], 8, [0], {}, [1])

    def test_double_definition_raises(self):
        nodes = [Node("neg", {}, (0,), (1,)), Node("neg", {}, (0,), (1,))]
        with pytest.raises(ValueError, match="defined twice"):
            Program(nodes, 2, [0], {}, [1])

    def test_undefined_output_raises(self):
        with pytest.raises(ValueError, match="never defined"):
            Program([Node("neg", {}, (0,), (1,))], 3, [0], {}, [2])

    def test_valid_program_constructs(self):
        program = _simple_program()
        assert program.op_counts() == {"add": 1, "mul": 1, "neg": 1}
        assert program.is_cacheable


class TestPasses:
    def test_dce_drops_unreachable_nodes(self):
        program = _simple_program()
        dead = Node("exp", {}, (2,), (5,))
        program = Program(
            program.nodes + [dead],
            6,
            [0, 1],
            {},
            [4],
            {**program.shapes, 5: (4,)},
            {**program.dtypes, 5: "float64"},
        )
        pruned = eliminate_dead_code(program)
        assert pruned.op_counts() == {"add": 1, "mul": 1, "neg": 1}

    def test_dce_keeps_stateful_nodes(self):
        program = _simple_program()
        stateful = Node("dropout_mask", {}, (2,), (5,), stateful=True)
        program = Program(
            program.nodes + [stateful],
            6,
            [0, 1],
            {},
            [4],
            {**program.shapes, 5: (4,)},
            {**program.dtypes, 5: "float64"},
        )
        kept = eliminate_dead_code(program)
        assert "dropout_mask" in kept.op_counts()
        assert not kept.is_cacheable

    def test_fuse_collapses_single_consumer_chain(self):
        program = _simple_program()
        fused = fuse_elementwise(program)
        assert fused.op_counts() == {"fused": 1}
        chain_ops = [spec[0] for spec in fused.nodes[0].params["chain"]]
        assert chain_ops == ["add", "mul", "neg"]

    def test_fused_program_is_bitwise_equal(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(4,)), rng.normal(size=(4,))
        program = _simple_program()
        plain = VM(program, reuse_buffers=False).run([a, b])[0]
        fused = VM(fuse_elementwise(program)).run([a, b])[0]
        np.testing.assert_array_equal(plain, fused)

    def test_liveness_frees_intermediates_only(self):
        program = _simple_program()
        free_after = liveness(program)
        freed = [vid for frees in free_after for vid in frees]
        # 0/1 are placeholders, 4 is the output: only 2 and 3 die.
        assert sorted(freed) == [2, 3]

    def test_plan_buffers_reuses_slots(self):
        # Two sequential chains of the same shape: the second chain should
        # reuse the slot the first one freed.
        shapes = {i: (8,) for i in range(6)}
        dtypes = {i: "float64" for i in range(6)}
        nodes = [
            Node("exp", {}, (0,), (1,)),
            Node("sum", {"axis": None}, (1,), (2,)),
            Node("exp", {}, (0,), (3,)),
            Node("sum", {"axis": None}, (3,), (4,)),
            Node("add", {}, (2, 4), (5,)),
        ]
        shapes[2] = shapes[4] = shapes[5] = ()
        program = Program(nodes, 6, [0], {}, [5], shapes, dtypes)
        plan = plan_buffers(program)
        assert plan.slot_of[1] == plan.slot_of[3]
        assert plan.peak_live_bytes > 0

    def test_outputs_never_get_scratch_slots(self):
        program = _simple_program()
        plan = plan_buffers(optimize(program, fuse=False))
        assert 4 not in plan.slot_of


class TestTraceCallable:
    def test_traced_program_replays_bitwise(self):
        from repro.autodiff.ops import add, mul, sub

        def fn(a, b, c):
            return add(mul(sub(a, b), 0.25), mul(c, 1.75))

        program = trace_callable(fn, [np.zeros(6)] * 3)
        rng = np.random.default_rng(1)
        a, b, c = (rng.normal(size=(6,)) for _ in range(3))
        eager = 0.25 * (a - b) + 1.75 * c
        out = VM(optimize(program)).run([a, b, c])[0]
        np.testing.assert_array_equal(out, eager)


class TestMemoryPlanner:
    BATCH = 8
    CAPACITY = 64 * 1024 * 1024

    def _cases(self):
        from repro.core.policy import DarknetzPolicy, DynamicPolicy, StaticPolicy

        lenet_factory = lambda: lenet5(
            num_classes=10, input_shape=(3, 16, 16), seed=0
        )
        mlp_factory = lambda: mlp(10, (64,), hidden=(64, 32), seed=0)
        return [
            ("lenet5", lenet_factory, StaticPolicy(5, [2, 4])),
            ("lenet5", lenet_factory, DarknetzPolicy(5, [4, 5])),
            ("lenet5", lenet_factory, DynamicPolicy(5, 2, [0.25] * 4, seed=3)),
            ("mlp", mlp_factory, StaticPolicy(3, [1, 3])),
            ("mlp", mlp_factory, DynamicPolicy(3, 1, [1 / 3] * 3, seed=3)),
        ]

    def test_plan_matches_cost_model(self):
        from repro.graph import plan_protection
        from repro.tee.costmodel import CostModel

        model = lenet5(num_classes=10, input_shape=(3, 16, 16), seed=0)
        plan = plan_protection(model, [2, 4], batch_size=self.BATCH)
        expected = CostModel(batch_size=self.BATCH).tee_memory_bytes(
            model, (2, 4)
        )
        assert plan.peak_bytes == expected
        assert plan.peak_bytes == sum(e.total_bytes for e in plan.layers)

    def test_planned_peak_equals_measured_gauge(self):
        """Compile-time secure-pool peak == runtime tee.pool.peak_bytes,
        for every zoo model x protection policy cycle."""
        from repro.core.policy import DynamicPolicy
        from repro.core.shielded import ShieldedModel
        from repro.graph import plan_policy
        from repro.tee.memory import SecureMemoryPool

        rng = np.random.default_rng(0)
        for model_name, factory, policy in self._cases():
            model = factory()
            cycles = 3 if isinstance(policy, DynamicPolicy) else 1
            _, per_cycle = plan_policy(
                model,
                policy,
                batch_size=self.BATCH,
                cycles=cycles,
                capacity_bytes=self.CAPACITY,
            )
            if model_name == "mlp":
                x = rng.normal(size=(self.BATCH, 64))
            else:
                x = rng.normal(size=(self.BATCH, 3, 16, 16))
            y = one_hot(rng.integers(0, 10, size=self.BATCH), 10)
            for cycle, plan in enumerate(per_cycle):
                with fresh() as ctx:
                    name = f"test-{model_name}-{cycle}"
                    shielded = ShieldedModel(
                        factory(),
                        policy,
                        pool=SecureMemoryPool(self.CAPACITY, name=name),
                        batch_size=self.BATCH,
                    )
                    shielded.begin_cycle(cycle=cycle)
                    shielded.train_step(x, y, lr=0.05)
                    shielded.end_cycle()
                    measured = ctx.registry.gauge("tee.pool.peak_bytes").value(
                        pool=name
                    )
                assert plan.peak_bytes == int(measured), (
                    model_name,
                    policy.describe(),
                    cycle,
                )

    def test_worst_cycle_dominates(self):
        from repro.core.policy import DynamicPolicy
        from repro.graph import plan_policy

        model = lenet5(num_classes=10, input_shape=(3, 16, 16), seed=0)
        policy = DynamicPolicy(5, 2, [0.25] * 4, seed=3)
        worst, per_cycle = plan_policy(model, policy, batch_size=8, cycles=5)
        assert worst.peak_bytes == max(p.peak_bytes for p in per_cycle)


class TestPlanCache:
    def _compile_once(self):
        model = mlp(4, (6,), hidden=(8,), seed=0)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 6))
        y = one_hot(rng.integers(0, 4, size=4), 4)
        return compile_model_step(model, x, y)

    def test_second_compile_hits_cache(self):
        with fresh() as ctx:
            first = self._compile_once()
            second = self._compile_once()
            assert first is second
            counters = ctx.registry.snapshot()["counters"]
            assert counters["graph.plan_cache.misses"][""] == 1.0
            assert counters["graph.plan_cache.hits"][""] == 1.0

    def test_fresh_resets_plan_cache(self):
        """obs.fresh() must clear the graph plan cache (regression: cached
        plans used to leak across isolated fresh() blocks)."""
        with fresh():
            self._compile_once()
            assert plan_cache_stats()["entries"] >= 1
            with fresh() as ctx:
                assert plan_cache_stats()["entries"] == 0
                self._compile_once()
                counters = ctx.registry.snapshot()["counters"]
                assert counters["graph.plan_cache.misses"][""] == 1.0

    def test_plan_cache_clear_is_idempotent(self):
        plan_cache_clear()
        plan_cache_clear()
        assert plan_cache_stats()["entries"] == 0
