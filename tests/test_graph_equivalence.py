"""Property suite: graph-executed training is bitwise-identical to eager.

Every assertion here is exact (``np.array_equal``, not allclose): the graph
VM replays the same numpy kernels on the same bits in the same order, so
compiled execution must agree with eager execution bit for bit — across the
model zoo, under fused conv, through double-backward traces, and between
batched and sequential client execution.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import functional as F
from repro.graph.vm import VM, BatchedVM, compile_model_step, trace_callable
from repro.nn import SGD, alexnet, lenet5, mlp, one_hot
from repro.obs import fresh

pytestmark = pytest.mark.property

settings.register_profile("graph", max_examples=12, deadline=None)
settings.load_profile("graph")


def _train_eager(model, x, y, lr, steps):
    params = [p for layer in model.layers for p in layer.parameters()]
    optimizer = SGD(params, lr=lr)
    losses = []
    for _ in range(steps):
        loss, grads = model.loss_and_gradients(x, y)
        flat = [
            grads[li][key]
            for li, layer in enumerate(model.layers)
            for key in sorted(layer.params)
        ]
        optimizer.step(flat)
        losses.append(float(loss.item()))
    return losses


def _train_compiled(model, x, y, lr, steps):
    step = compile_model_step(model, x, y)
    vm = step.make_vm()
    losses = []
    for _ in range(steps):
        loss, grads = step.run_step(vm, model, x, y)
        for (li, name), g in zip(step.param_index, grads):
            param = model.layers[li].params[name]
            param.data = param.data - lr * g
        losses.append(loss)
    return losses


def _assert_same_training(factory, x, y, steps=3, lr=0.05):
    with fresh():
        eager_model = factory()
        compiled_model = factory()
        eager_losses = _train_eager(eager_model, x, y, lr, steps)
        compiled_losses = _train_compiled(compiled_model, x, y, lr, steps)
        assert eager_losses == compiled_losses
        for a, b in zip(
            eager_model.get_weights(), compiled_model.get_weights()
        ):
            assert set(a) == set(b)
            for key in a:
                np.testing.assert_array_equal(a[key], b[key])


class TestModelZooEquivalence:
    @given(
        hidden=st.lists(st.integers(2, 24), min_size=1, max_size=3),
        batch=st.integers(1, 16),
        seed=st.integers(0, 2**16),
    )
    def test_mlp_bitwise(self, hidden, batch, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(batch, 6))
        y = one_hot(rng.integers(0, 4, size=batch), 4)
        _assert_same_training(
            lambda: mlp(4, (6,), hidden=tuple(hidden), seed=seed), x, y
        )

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=4, deadline=None)
    def test_lenet5_fused_conv_bitwise(self, seed):
        assert F._USE_FUSED_CONV  # fused conv is the traced default
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(4, 3, 16, 16))
        y = one_hot(rng.integers(0, 5, size=4), 5)
        _assert_same_training(
            lambda: lenet5(
                num_classes=5, input_shape=(3, 16, 16), seed=seed, scale=0.5
            ),
            x,
            y,
            steps=2,
        )

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=2, deadline=None)
    def test_lenet5_composed_conv_bitwise(self, seed):
        previous = F.set_fused_conv(False)
        try:
            rng = np.random.default_rng(seed)
            x = rng.normal(size=(2, 3, 16, 16))
            y = one_hot(rng.integers(0, 5, size=2), 5)
            _assert_same_training(
                lambda: lenet5(
                    num_classes=5, input_shape=(3, 16, 16), seed=seed, scale=0.5
                ),
                x,
                y,
                steps=1,
            )
        finally:
            F.set_fused_conv(previous)

    def test_alexnet_bitwise(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 16, 16))
        y = one_hot(rng.integers(0, 4, size=2), 4)
        _assert_same_training(
            lambda: alexnet(
                num_classes=4, input_shape=(3, 16, 16), seed=0, scale=0.05
            ),
            x,
            y,
            steps=1,
        )


class TestShieldedCompiledSteps:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=4, deadline=None)
    def test_compile_steps_flag_is_bitwise_neutral(self, seed):
        from repro.core.policy import NoProtection
        from repro.core.shielded import ShieldedModel

        rng = np.random.default_rng(seed)
        x = rng.normal(size=(4, 6))
        y = one_hot(rng.integers(0, 4, size=4), 4)
        finals = {}
        for compiled in (False, True):
            with fresh():
                shielded = ShieldedModel(
                    mlp(4, (6,), hidden=(8, 5), seed=seed),
                    NoProtection(3),
                    batch_size=4,
                    compile_steps=compiled,
                )
                losses = []
                for cycle in range(2):
                    shielded.begin_cycle(cycle=cycle)
                    for _ in range(2):
                        losses.append(shielded.train_step(x, y, lr=0.05))
                    shielded.end_cycle()
                finals[compiled] = (losses, shielded.model.get_weights())
        assert finals[False][0] == finals[True][0]
        for a, b in zip(finals[False][1], finals[True][1]):
            for key in a:
                np.testing.assert_array_equal(a[key], b[key])


class TestDoubleBackward:
    @given(seed=st.integers(0, 2**16))
    def test_traced_second_order_matches_eager(self, seed):
        from repro.autodiff.ops import mul
        from repro.autodiff.tensor import grad

        def second_order(x_t):
            y = mul(mul(x_t, x_t), x_t).sum()
            (g1,) = grad(y, [x_t], create_graph=True)
            (g2,) = grad(g1.sum(), [x_t])
            return g2

        rng = np.random.default_rng(seed)
        x = rng.normal(size=(5,))
        program = trace_callable(second_order, [np.zeros(5)])
        traced = VM(program).run([x])[0]
        from repro.autodiff.tensor import Tensor

        x_t = Tensor(x.copy(), requires_grad=True)
        eager = second_order(x_t).data
        np.testing.assert_array_equal(traced, eager)


class TestBatchedExecution:
    @given(
        width=st.integers(1, 40),
        batch=st.integers(1, 9),
        seed=st.integers(0, 2**16),
    )
    def test_batched_rows_equal_sequential_runs(self, width, batch, seed):
        from repro.autodiff.ops import add, mul, sub

        def delta(global_flat, noise):
            return add(mul(sub(global_flat, noise), 0.2), mul(noise, 0.05))

        program = trace_callable(delta, [np.zeros(width)] * 2)
        rng = np.random.default_rng(seed)
        global_flat = rng.normal(size=(width,))
        noise = rng.normal(size=(batch, width))

        batched = BatchedVM(program, [1]).run([global_flat, noise])[0]
        assert batched.shape == (batch, width)
        vm = VM(program)
        for row in range(batch):
            expected = vm.run([global_flat, noise[row]])[0]
            np.testing.assert_array_equal(batched[row], expected)

    def test_short_final_chunk_needs_no_padding(self):
        from repro.autodiff.ops import mul

        program = trace_callable(lambda n: mul(n, 3.0), [np.zeros(7)])
        bvm = BatchedVM(program, [0])
        full = bvm.run([np.ones((8, 7))])[0]
        short = bvm.run([np.ones((3, 7))])[0]
        assert full.shape == (8, 7) and short.shape == (3, 7)
        np.testing.assert_array_equal(short, np.full((3, 7), 3.0))
