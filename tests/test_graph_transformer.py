"""Graph-compiled transformer training is bitwise-identical to eager.

The graph compiler traces the new attention ops (bmm, softmax over the
last axis, layernorm, GELU, residual adds) into the same numpy kernels the
eager path runs, so the compiled loss and every parameter gradient must
agree bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.vm import compile_model_step
from repro.nn import gpt_tiny, one_hot, vit_tiny
from repro.obs import fresh


def _batch(model, n, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, *model.input_shape))
    y = one_hot(rng.integers(0, model.output_shape[-1], size=n), model.output_shape[-1])
    return x, y


def _train_eager(model, x, y, lr, steps):
    losses = []
    for _ in range(steps):
        loss, grads = model.loss_and_gradients(x, y)
        for layer, g in zip(model.layers, grads):
            for key, grad_t in g.items():
                layer.params[key].data = layer.params[key].data - lr * grad_t.data
        losses.append(float(loss.data))
    return losses


def _train_compiled(model, x, y, lr, steps):
    step = compile_model_step(model, x, y)
    vm = step.make_vm()
    losses = []
    for _ in range(steps):
        loss, grads = step.run_step(vm, model, x, y)
        for (li, name), g in zip(step.param_index, grads):
            param = model.layers[li].params[name]
            param.data = param.data - lr * g
        losses.append(loss)
    return losses


@pytest.mark.parametrize("factory", [vit_tiny, gpt_tiny])
def test_compiled_training_is_bitwise(factory):
    with fresh():
        eager = factory(num_classes=6, seed=13)
        compiled = factory(num_classes=6, seed=13)
        x, y = _batch(eager, n=3, seed=2)
        eager_losses = _train_eager(eager, x, y, lr=0.05, steps=3)
        compiled_losses = _train_compiled(compiled, x, y, lr=0.05, steps=3)
        assert eager_losses == compiled_losses
        for a, b in zip(eager.get_weights(), compiled.get_weights()):
            assert set(a) == set(b)
            for key in a:
                np.testing.assert_array_equal(a[key], b[key])


def test_trace_contains_attention_kernels():
    with fresh():
        model = vit_tiny(num_classes=6, seed=0)
        x, y = _batch(model, n=2, seed=0)
        step = compile_model_step(model, x, y)
        ops = {node.op for node in step.program.nodes}
        assert "bmm" in ops
        assert "rowmax" in ops  # stable softmax rides the existing kernel
