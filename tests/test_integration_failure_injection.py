"""Failure-injection integration tests across subsystem boundaries.

Each test breaks one link in the end-to-end chain and checks the system
fails *closed* (protected data stays protected, errors are loud).
"""

import numpy as np
import pytest

from repro.core import ShieldedModel, StaticPolicy
from repro.data import synthetic_cifar
from repro.fl import FLClient, FLServer, TrainingPlan
from repro.nn import lenet5, mlp, one_hot
from repro.tee import (
    IntegrityError,
    SecureMemoryExhausted,
    SecureMemoryPool,
    SecureStorage,
    SecureWorldViolation,
    TrustedIOPath,
    secure_world,
)
from repro.tee.crypto import CryptoError


def tiny_shielded(protected, pool=None, seed=0):
    model = mlp(num_classes=4, input_shape=(6,), hidden=(8, 5), seed=seed)
    return model, ShieldedModel(
        model, StaticPolicy(3, protected, max_slices=None), pool=pool, batch_size=6
    )


class TestEnclaveMemoryPressure:
    def test_oom_leaves_no_partial_state_observable(self):
        """If provisioning runs out of secure memory, the attempt fails and
        nothing of the protected weights is readable from the normal world."""
        # Big enough for L1's weights but not for everything.
        pool = SecureMemoryPool(1200)
        model, shielded = tiny_shielded([1, 2, 3], pool=pool)
        with pytest.raises(SecureMemoryExhausted):
            shielded.begin_cycle()
        # Any buffer that was created is only readable in the secure world.
        for (index, name), buffer in shielded.ta._buffers.items():
            with pytest.raises(SecureWorldViolation):
                buffer.read()

    def test_subsequent_cycles_fit_after_policy_shrinks(self):
        pool = SecureMemoryPool(4 * 1024 * 1024)
        model, shielded = tiny_shielded([2], pool=pool)
        for _ in range(3):
            shielded.begin_cycle()
            shielded.end_cycle()
        assert pool.used_bytes == 0


class TestTamperedTransport:
    def test_corrupted_sealed_weights_rejected(self):
        model, shielded = tiny_shielded([2])
        iopath = TrustedIOPath()
        sealed = iopath.seal([{}, model.layer(2).get_weights(), {}])
        corrupted = sealed[:-3] + bytes(3)
        with pytest.raises(CryptoError):
            shielded.begin_cycle(sealed_weights=corrupted, iopath=iopath)

    def test_update_from_wrong_session_rejected_at_server(self):
        dataset = synthetic_cifar(num_samples=16, num_classes=4, seed=0)
        client = FLClient(
            "c", dataset, lenet5(num_classes=4, seed=0, scale=0.5),
            policy=StaticPolicy(5, [2]), seed=0,
        )
        plan = TrainingPlan(lr=0.1, batch_size=8, local_steps=1)
        server = FLServer(
            lenet5(num_classes=4, seed=0, scale=0.5), plan, StaticPolicy(5, [2])
        )
        server.register(client)
        download = server._make_download(client, frozenset({2}))
        update = client.run_cycle(download, plan)
        # A MITM swaps in ciphertext sealed under a different key.
        update.sealed_weights = TrustedIOPath().seal([{}] * 5)
        with pytest.raises(CryptoError):
            server._merge_update(client, update)


class TestStorageFailures:
    def test_client_detects_tampered_training_data(self):
        dataset = synthetic_cifar(num_samples=8, num_classes=3, seed=0)
        client = FLClient(
            "c", dataset, lenet5(num_classes=3, seed=0, scale=0.5), seed=0
        )
        key = client.storage.objects()[0]
        blob = bytearray(client.storage.backend.get(key))
        blob[len(blob) // 2] ^= 0x01
        client.storage.backend.put(key, bytes(blob))
        with pytest.raises(IntegrityError):
            client._load_data()


class TestEnclaveProtocolAbuse:
    def test_backward_without_forward_rejected(self):
        model, shielded = tiny_shielded([2])
        shielded.begin_cycle()
        with pytest.raises(Exception, match="without a preceding forward"):
            shielded.monitor.smc(
                shielded.ta.uuid,
                "backward_run",
                indices=(2,),
                gout=np.zeros((6, 5)),
                lr=0.1,
            )
        shielded.end_cycle()

    def test_direct_ta_invocation_from_normal_world_blocked(self):
        model, shielded = tiny_shielded([2])
        shielded.begin_cycle()
        with pytest.raises(SecureWorldViolation):
            shielded.ta.invoke("export_weights", iopath=TrustedIOPath())
        shielded.end_cycle()

    def test_release_twice_is_safe(self):
        model, shielded = tiny_shielded([2])
        shielded.begin_cycle()
        shielded.end_cycle()
        # A second release SMC finds nothing to free and must not corrupt
        # the pool.
        with secure_world():
            shielded.ta.invoke("release", restore=False)
        assert shielded.pool.used_bytes == 0


class TestRNNExtension:
    def test_shielded_training_supports_recurrent_layers(self):
        """The paper's future-work direction: RNN protection works through
        the same partitioned trainer."""
        from repro.nn import Dense, Sequential, SimpleRNN

        model = Sequential(
            [SimpleRNN(6), Dense(3, name="L2")], input_shape=(4, 5), seed=0
        )
        reference = Sequential(
            [SimpleRNN(6), Dense(3, name="L2")], input_shape=(4, 5), seed=0
        )
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5, 4, 5))
        y = one_hot(rng.integers(0, 3, 5), 3)

        shielded = ShieldedModel(model, StaticPolicy(2, [1]), batch_size=5)
        shielded.begin_cycle()
        loss_protected = shielded.train_step(x, y, lr=0.2)
        leak = shielded.end_cycle()

        plain = ShieldedModel(reference, StaticPolicy(2, []), batch_size=5)
        plain.begin_cycle()
        loss_plain = plain.train_step(x, y, lr=0.2)
        plain.end_cycle()

        assert loss_protected == pytest.approx(loss_plain, rel=1e-12)
        assert leak.mean_gradients()[0] is None  # RNN gradients shielded
