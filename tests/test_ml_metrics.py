"""Tests for classification metrics (AUC is the paper's headline measure)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    accuracy_score,
    confusion_matrix,
    roc_auc_score,
    roc_curve,
    train_test_split,
)

settings.register_profile("ci", max_examples=30, deadline=None)
settings.load_profile("ci")


class TestRocAuc:
    def test_perfect_classifier(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_perfectly_wrong(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_constant_scores_give_half(self):
        assert roc_auc_score([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == 0.5

    def test_ties_midranked(self):
        # One tie between a positive and a negative contributes 0.5.
        auc = roc_auc_score([0, 1], [0.5, 0.5])
        assert auc == 0.5

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 40)
        y[0], y[1] = 0, 1  # both classes present
        s = rng.normal(size=40)
        pos = s[y == 1]
        neg = s[y == 0]
        pairwise = np.mean(
            [(p > n) + 0.5 * (p == n) for p in pos for n in neg]
        )
        assert roc_auc_score(y, s) == pytest.approx(pairwise)

    def test_single_class_raises(self):
        with pytest.raises(ValueError, match="both classes"):
            roc_auc_score([1, 1], [0.1, 0.2])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score([0, 1], [0.1, 0.2, 0.3])

    @given(st.integers(0, 500))
    def test_complement_symmetry(self, seed):
        """AUC(y, s) + AUC(y, -s) == 1."""
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, 30)
        if y.min() == y.max():
            y[0] = 1 - y[0]
        s = rng.normal(size=30)
        assert roc_auc_score(y, s) + roc_auc_score(y, -s) == pytest.approx(1.0)


class TestRocCurve:
    def test_starts_at_origin_ends_at_one(self):
        fpr, tpr, _ = roc_curve([0, 1, 0, 1], [0.1, 0.9, 0.4, 0.6])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_monotone(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 50)
        y[:2] = [0, 1]
        s = rng.normal(size=50)
        fpr, tpr, _ = roc_curve(y, s)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)


class TestOtherMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_confusion_matrix(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1], num_classes=2)
        np.testing.assert_array_equal(cm, [[1, 1], [0, 2]])

    def test_split_sizes(self):
        x = np.arange(20).reshape(10, 2)
        y = np.arange(10)
        xtr, xte, ytr, yte = train_test_split(x, y, test_fraction=0.3)
        assert len(xte) == 3 and len(xtr) == 7
        assert len(yte) == 3

    def test_split_keeps_rows_aligned(self):
        x = np.arange(10)[:, None] * np.ones((10, 2))
        y = np.arange(10)
        xtr, xte, ytr, yte = train_test_split(x, y, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(xtr[:, 0], ytr)

    def test_split_rejects_misaligned(self):
        with pytest.raises(ValueError, match="equal"):
            train_test_split(np.zeros((5, 2)), np.zeros(4))

    def test_split_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 2)), test_fraction=0.0)
