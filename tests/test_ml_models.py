"""Tests for the attack classifiers (logistic regression, tree, forest)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    DecisionTreeClassifier,
    LogisticRegression,
    MeanImputer,
    RandomForestClassifier,
    StandardScaler,
    roc_auc_score,
)

settings.register_profile("ci", max_examples=20, deadline=None)
settings.load_profile("ci")


def separable_data(n=200, d=6, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(int)
    return x, y


class TestLogisticRegression:
    def test_learns_separable_data(self):
        x, y = separable_data()
        model = LogisticRegression().fit(x[:150], y[:150])
        assert roc_auc_score(y[150:], model.predict_proba(x[150:])) > 0.95

    def test_probabilities_in_unit_interval(self):
        x, y = separable_data()
        p = LogisticRegression().fit(x, y).predict_proba(x)
        assert p.min() >= 0.0 and p.max() <= 1.0

    def test_predict_thresholds_at_half(self):
        x, y = separable_data()
        model = LogisticRegression().fit(x, y)
        np.testing.assert_array_equal(
            model.predict(x), (model.predict_proba(x) >= 0.5).astype(int)
        )

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ValueError, match="binary"):
            LogisticRegression().fit(np.zeros((3, 2)), np.array([0, 1, 2]))

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError, match="2-D"):
            LogisticRegression().fit(np.zeros(3), np.zeros(3))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            LogisticRegression().predict_proba(np.zeros((2, 3)))

    def test_extreme_logits_do_not_overflow(self):
        model = LogisticRegression(lr=5.0, iterations=50)
        x = np.array([[100.0], [-100.0]] * 20)
        y = np.array([1, 0] * 20)
        model.fit(x, y)
        p = model.predict_proba(x)
        assert np.isfinite(p).all()


class TestDecisionTree:
    def test_learns_axis_aligned_split(self):
        x, y = separable_data()
        tree = DecisionTreeClassifier(max_depth=4).fit(x[:150], y[:150])
        assert roc_auc_score(y[150:], tree.predict_proba(x[150:])) > 0.8

    def test_depth_limit_respected(self):
        x, y = separable_data(n=300)
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert tree.depth() <= 2

    def test_pure_node_becomes_leaf(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.depth() == 0
        np.testing.assert_allclose(tree.predict_proba(x), 1.0)

    def test_constant_features_yield_leaf(self):
        x = np.zeros((10, 3))
        y = np.array([0, 1] * 5)
        tree = DecisionTreeClassifier().fit(x, y)
        np.testing.assert_allclose(tree.predict_proba(x), 0.5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict_proba(np.zeros((2, 2)))


class TestRandomForest:
    def test_learns_nonlinear_boundary(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(400, 2))
        y = ((x[:, 0] ** 2 + x[:, 1] ** 2) < 1.0).astype(int)
        forest = RandomForestClassifier(n_estimators=25, seed=0).fit(x[:300], y[:300])
        assert roc_auc_score(y[300:], forest.predict_proba(x[300:])) > 0.85

    def test_deterministic_given_seed(self):
        x, y = separable_data()
        a = RandomForestClassifier(n_estimators=5, seed=3).fit(x, y).predict_proba(x)
        b = RandomForestClassifier(n_estimators=5, seed=3).fit(x, y).predict_proba(x)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        x, y = separable_data()
        a = RandomForestClassifier(n_estimators=5, seed=1).fit(x, y).predict_proba(x)
        b = RandomForestClassifier(n_estimators=5, seed=2).fit(x, y).predict_proba(x)
        assert not np.array_equal(a, b)

    def test_rejects_bad_estimator_count(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_random_labels_score_near_half(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(300, 5))
        y = rng.integers(0, 2, 300)
        forest = RandomForestClassifier(n_estimators=15, seed=0).fit(x[:200], y[:200])
        auc = roc_auc_score(y[200:], forest.predict_proba(x[200:]))
        assert 0.3 < auc < 0.7


class TestPreprocess:
    def test_scaler_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(200, 4))
        out = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_scaler_constant_column_safe(self):
        x = np.ones((5, 2))
        out = StandardScaler().fit_transform(x)
        assert np.isfinite(out).all()

    def test_imputer_fills_with_column_mean(self):
        x = np.array([[1.0, np.nan], [3.0, 4.0]])
        out = MeanImputer().fit_transform(x)
        assert out[0, 1] == 4.0

    def test_imputer_all_nan_column_fills_zero(self):
        x = np.array([[np.nan], [np.nan]])
        out = MeanImputer().fit_transform(x)
        np.testing.assert_array_equal(out, [[0.0], [0.0]])

    def test_imputer_transform_uses_fit_means(self):
        imputer = MeanImputer().fit(np.array([[2.0], [4.0]]))
        out = imputer.transform(np.array([[np.nan]]))
        assert out[0, 0] == 3.0

    @given(st.integers(0, 100))
    def test_imputer_leaves_finite_values_untouched(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(10, 3))
        out = MeanImputer().fit_transform(x)
        np.testing.assert_array_equal(out, x)
