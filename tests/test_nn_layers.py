"""Tests for individual layers: shapes, params, cost-model metadata."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, SimpleRNN


def build(layer, input_shape, seed=0):
    layer.build(tuple(input_shape), np.random.default_rng(seed))
    return layer


class TestConv2D:
    def test_output_shape_stride_pad(self):
        layer = build(Conv2D(12, 5, stride=2, pad=2), (3, 32, 32))
        assert layer.output_shape == (12, 16, 16)

    def test_fused_pool_halves_spatial(self):
        layer = build(Conv2D(8, 3, stride=1, pad=1, pool=2), (3, 8, 8))
        assert layer.output_shape == (8, 4, 4)

    def test_forward_shape(self):
        layer = build(Conv2D(4, 3, pad=1, activation="relu"), (2, 6, 6))
        out = layer(Tensor(np.zeros((5, 2, 6, 6))))
        assert out.shape == (5, 4, 6, 6)

    def test_weight_param_count_excludes_bias(self):
        layer = build(Conv2D(12, 5), (3, 32, 32))
        assert layer.weight_param_count == 12 * 3 * 25
        assert layer.param_count == 12 * 3 * 25 + 12

    def test_no_bias(self):
        layer = build(Conv2D(4, 3, use_bias=False), (2, 6, 6))
        assert "bias" not in layer.params

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError, match="activation"):
            Conv2D(4, 3, activation="swish")

    def test_bad_input_shape_raises(self):
        with pytest.raises(ValueError, match="expects"):
            build(Conv2D(4, 3), (6,))

    def test_unbuilt_layer_raises_on_call(self):
        with pytest.raises(RuntimeError, match="before build"):
            Conv2D(4, 3)(Tensor(np.zeros((1, 2, 4, 4))))

    def test_tee_memory_bytes_matches_formula(self):
        layer = build(Conv2D(12, 5, stride=2, pad=2), (3, 32, 32))
        batch = 32
        expected = 4 * (
            2 * layer.param_count + 3 * 32 * 32 * batch + 2 * 12 * 16 * 16 * batch
        )
        assert layer.tee_memory_bytes(batch) == expected

    def test_flops_scale_with_output_area(self):
        small = build(Conv2D(4, 3, pad=1), (2, 4, 4))
        large = build(Conv2D(4, 3, pad=1), (2, 8, 8))
        assert large.flops_per_sample() == 4 * small.flops_per_sample()


class TestDense:
    def test_auto_flatten_4d_input(self):
        layer = build(Dense(10), (3, 4, 4))
        out = layer(Tensor(np.zeros((2, 3, 4, 4))))
        assert out.shape == (2, 10)

    def test_input_shape_collapsed(self):
        layer = build(Dense(7), (3, 4, 4))
        assert layer.input_shape == (48,)
        assert layer.output_shape == (7,)

    def test_set_weights_shape_check(self):
        layer = build(Dense(3), (5,))
        with pytest.raises(ValueError, match="shape mismatch"):
            layer.set_weights({"weight": np.zeros((4, 5))})

    def test_set_weights_unknown_param(self):
        layer = build(Dense(3), (5,))
        with pytest.raises(KeyError, match="no parameter"):
            layer.set_weights({"gamma": np.zeros(3)})

    def test_get_weights_is_copy(self):
        layer = build(Dense(3), (5,))
        w = layer.get_weights()
        w["weight"][:] = 99.0
        assert not np.any(layer.params["weight"].data == 99.0)

    def test_parameters_stable_order(self):
        layer = build(Dense(3), (5,))
        names = sorted(layer.params)
        assert [layer.params[n] for n in names] == layer.parameters()


class TestMaxPoolAndFlatten:
    def test_maxpool_shapes(self):
        layer = build(MaxPool2D(2), (3, 8, 8))
        assert layer.output_shape == (3, 4, 4)
        assert layer.param_count == 0

    def test_maxpool_indivisible_raises(self):
        with pytest.raises(ValueError, match="divide"):
            build(MaxPool2D(2), (3, 7, 8))

    def test_flatten(self):
        layer = build(Flatten(), (3, 4, 4))
        assert layer.output_shape == (48,)
        out = layer(Tensor(np.zeros((2, 3, 4, 4))))
        assert out.shape == (2, 48)

    def test_parameter_free_tee_memory(self):
        layer = build(MaxPool2D(2), (3, 8, 8))
        # Only activations, no weights.
        assert layer.tee_memory_bytes(1) == 4 * (3 * 8 * 8 + 2 * 3 * 4 * 4)


class TestSimpleRNN:
    def test_shapes(self):
        layer = build(SimpleRNN(6), (4, 3))
        assert layer.output_shape == (6,)
        out = layer(Tensor(np.zeros((2, 4, 3))))
        assert out.shape == (2, 6)

    def test_has_recurrent_weights(self):
        layer = build(SimpleRNN(6), (4, 3))
        assert set(layer.params) == {"weight", "recurrent", "bias"}

    def test_gradients_flow_through_time(self):
        from repro.autodiff import grad

        layer = build(SimpleRNN(4), (3, 2))
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 2)), requires_grad=True)
        out = (layer(x) ** 2).sum()
        (gx,) = grad(out, [x])
        # Every timestep contributes gradient.
        assert np.abs(gx.data).sum() > 0
        assert np.abs(gx.data[:, 0]).sum() > 0  # earliest step included

    def test_rejects_bad_input_shape(self):
        with pytest.raises(ValueError, match="expects"):
            build(SimpleRNN(4), (3,))


class TestDropout:
    def test_identity_at_inference(self):
        from repro.nn import Dropout
        layer = build(Dropout(0.5), (6,))
        layer.training = False
        x = Tensor(np.ones((3, 6)))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_training_zeroes_and_rescales(self):
        from repro.nn import Dropout
        layer = build(Dropout(0.5, seed=1), (1000,))
        out = layer(Tensor(np.ones((1, 1000)))).data
        zeros = (out == 0).mean()
        assert 0.35 < zeros < 0.65
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_expected_value_preserved(self):
        from repro.nn import Dropout
        layer = build(Dropout(0.3, seed=2), (5000,))
        out = layer(Tensor(np.ones((1, 5000)))).data
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_zero_rate_is_identity(self):
        from repro.nn import Dropout
        layer = build(Dropout(0.0), (4,))
        x = Tensor(np.ones((2, 4)))
        assert layer(x) is x

    def test_invalid_rate_rejected(self):
        from repro.nn import Dropout
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_gradient_flows_through_mask(self):
        from repro.autodiff import grad
        from repro.nn import Dropout
        layer = build(Dropout(0.5, seed=3), (8,))
        x = Tensor(np.ones((2, 8)), requires_grad=True)
        out = layer(x)
        (g,) = grad((out ** 2).sum(), [x])
        # Gradient is zero exactly where the mask dropped the unit.
        np.testing.assert_array_equal(g.data == 0, out.data == 0)

    def test_deterministic_per_build_seed(self):
        from repro.nn import Dropout
        a = build(Dropout(0.5, seed=4), (16,))
        b = build(Dropout(0.5, seed=4), (16,))
        x = Tensor(np.ones((1, 16)))
        np.testing.assert_array_equal(a(x).data, b(x).data)
