"""Tests for the Sequential model container."""

import numpy as np
import pytest

from repro.nn import Dense, Sequential, lenet5, mlp, one_hot


class TestConstruction:
    def test_layers_named_l1_ln(self, small_model):
        assert [l.name for l in small_model.layers] == ["L1", "L2", "L3"]

    def test_layer_accessor_is_one_based(self, small_model):
        assert small_model.layer(1) is small_model.layers[0]
        assert small_model.layer(3) is small_model.layers[2]

    def test_layer_accessor_rejects_out_of_range(self, small_model):
        with pytest.raises(IndexError):
            small_model.layer(0)
        with pytest.raises(IndexError):
            small_model.layer(4)

    def test_param_count_sums_layers(self, small_model):
        assert small_model.param_count == sum(
            l.param_count for l in small_model.layers
        )

    def test_summary_mentions_every_layer(self, small_model):
        text = small_model.summary()
        for i in range(1, 4):
            assert f"L{i}" in text

    def test_architecture_digest_stable_and_sensitive(self):
        a = mlp(num_classes=3, input_shape=(4,), hidden=(5,), seed=0)
        b = mlp(num_classes=3, input_shape=(4,), hidden=(5,), seed=99)
        c = mlp(num_classes=3, input_shape=(4,), hidden=(6,), seed=0)
        assert a.architecture_digest() == b.architecture_digest()  # weights don't matter
        assert a.architecture_digest() != c.architecture_digest()  # structure does


class TestForwardAndLoss:
    def test_forward_shape(self, small_model, rng):
        out = small_model.forward(rng.normal(size=(7, 6)))
        assert out.shape == (7, 4)

    def test_predict_proba_rows_sum_to_one(self, small_model, rng):
        probs = small_model.predict_proba(rng.normal(size=(5, 6)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_accuracy_bounds(self, small_model, rng):
        x = rng.normal(size=(20, 6))
        y = one_hot(rng.integers(0, 4, 20), 4)
        acc = small_model.accuracy(x, y)
        assert 0.0 <= acc <= 1.0

    def test_loss_positive(self, small_model, rng):
        x = rng.normal(size=(4, 6))
        y = one_hot(rng.integers(0, 4, 4), 4)
        assert small_model.loss(x, y).item() > 0

    def test_gradients_aligned_with_layers(self, small_model, rng):
        x = rng.normal(size=(4, 6))
        y = one_hot(rng.integers(0, 4, 4), 4)
        _, grads = small_model.loss_and_gradients(x, y)
        assert len(grads) == 3
        for layer, g in zip(small_model.layers, grads):
            assert set(g) == set(layer.params)
            for key in g:
                assert g[key].shape == layer.params[key].shape

    def test_gradients_array_returns_copies(self, small_model, rng):
        x = rng.normal(size=(4, 6))
        y = one_hot(rng.integers(0, 4, 4), 4)
        grads = small_model.gradients_array(x, y)
        grads[0]["weight"][:] = 0.0
        again = small_model.gradients_array(x, y)
        assert np.abs(again[0]["weight"]).sum() > 0

    def test_gradient_descent_reduces_loss(self, small_model, rng):
        x = rng.normal(size=(16, 6))
        y = one_hot(rng.integers(0, 4, 16), 4)
        before = small_model.loss(x, y).item()
        for _ in range(5):
            _, grads = small_model.loss_and_gradients(x, y)
            for layer, g in zip(small_model.layers, grads):
                for key, grad_t in g.items():
                    layer.params[key].data -= 0.5 * grad_t.data
        assert small_model.loss(x, y).item() < before


class TestWeights:
    def test_get_set_roundtrip(self, small_model):
        weights = small_model.get_weights()
        twin = mlp(num_classes=4, input_shape=(6,), hidden=(8, 5), seed=7)
        twin.set_weights(weights)
        for a, b in zip(small_model.get_weights(), twin.get_weights()):
            for key in a:
                np.testing.assert_array_equal(a[key], b[key])

    def test_set_weights_wrong_length(self, small_model):
        with pytest.raises(ValueError, match="layer weight dicts"):
            small_model.set_weights([{}])

    def test_clone_preserves_weights_and_structure(self, small_model, rng):
        twin = small_model.clone()
        x = rng.normal(size=(3, 6))
        np.testing.assert_allclose(
            twin.forward(x).data, small_model.forward(x).data
        )

    def test_clone_is_independent(self, small_model):
        twin = small_model.clone()
        twin.layer(1).params["weight"].data[:] = 0.0
        assert np.abs(small_model.layer(1).params["weight"].data).sum() > 0


class TestLeNetIntegration:
    def test_lenet_trains_on_images(self, image_batch):
        model = lenet5(num_classes=5, seed=0, scale=0.5)
        x, y = image_batch
        before = model.loss(x, y).item()
        for _ in range(8):
            _, grads = model.loss_and_gradients(x, y)
            for layer, g in zip(model.layers, grads):
                for key, grad_t in g.items():
                    layer.params[key].data -= 0.2 * grad_t.data
        assert model.loss(x, y).item() < before
