"""Tests for optimisers."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import SGD, Adam


def quadratic_params():
    return [Tensor(np.array([4.0]), requires_grad=True)]


class TestSGD:
    def test_plain_update_matches_formula(self):
        p = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        SGD([p], lr=0.5).step([np.array([0.2, -0.4])])
        np.testing.assert_allclose(p.data, [0.9, 2.2])

    def test_accepts_tensor_gradients(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        SGD([p], lr=1.0).step([Tensor(np.array([0.5]))])
        assert p.data[0] == pytest.approx(0.5)

    def test_momentum_accumulates(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = SGD([p], lr=1.0, momentum=0.9)
        opt.step([np.array([1.0])])   # v=1, p=-1
        opt.step([np.array([1.0])])   # v=1.9, p=-2.9
        assert p.data[0] == pytest.approx(-2.9)

    def test_gradient_count_mismatch(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        with pytest.raises(ValueError, match="gradients"):
            SGD([p], lr=0.1).step([np.zeros(1), np.zeros(1)])

    def test_converges_on_quadratic(self):
        (p,) = quadratic_params()
        opt = SGD([p], lr=0.3)
        for _ in range(50):
            opt.step([2 * p.data])  # d/dp p^2
        assert abs(p.data[0]) < 1e-4


class TestAdam:
    def test_first_step_size_is_lr(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        Adam([p], lr=0.1).step([np.array([123.0])])
        # Bias-corrected Adam's first step has magnitude ~= lr.
        assert p.data[0] == pytest.approx(-0.1, rel=1e-4)

    def test_converges_on_quadratic(self):
        (p,) = quadratic_params()
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            opt.step([2 * p.data])
        assert abs(p.data[0]) < 1e-2

    def test_state_is_per_parameter(self):
        a = Tensor(np.array([0.0]), requires_grad=True)
        b = Tensor(np.array([0.0]), requires_grad=True)
        opt = Adam([a, b], lr=0.1)
        opt.step([np.array([1.0]), np.array([0.0])])
        assert a.data[0] != 0.0
        assert b.data[0] == 0.0

    def test_deterministic(self):
        results = []
        for _ in range(2):
            p = Tensor(np.array([1.0]), requires_grad=True)
            opt = Adam([p], lr=0.05)
            for _ in range(10):
                opt.step([2 * p.data])
            results.append(p.data[0])
        assert results[0] == results[1]
