"""Tests for weight serialisation (the FL wire/storage encoding)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import (
    flatten_weights,
    load_weights,
    mlp,
    save_weights,
    unflatten_weights,
    weights_from_bytes,
    weights_to_bytes,
)

settings.register_profile("ci", max_examples=20, deadline=None)
settings.load_profile("ci")


class TestBytesRoundtrip:
    def test_roundtrip(self, small_model):
        weights = small_model.get_weights()
        restored = weights_from_bytes(weights_to_bytes(weights))
        assert len(restored) == len(weights)
        for a, b in zip(weights, restored):
            assert set(a) == set(b)
            for key in a:
                np.testing.assert_array_equal(a[key], b[key])

    def test_empty_layers_preserved(self):
        weights = [{"weight": np.ones((2, 2))}, {}, {"bias": np.zeros(3)}]
        restored = weights_from_bytes(weights_to_bytes(weights))
        assert restored[1] == {}
        np.testing.assert_array_equal(restored[2]["bias"], np.zeros(3))

    def test_file_roundtrip(self, small_model, tmp_path):
        path = str(tmp_path / "weights.npz")
        save_weights(small_model, path)
        twin = mlp(num_classes=4, input_shape=(6,), hidden=(8, 5), seed=9)
        load_weights(twin, path)
        for a, b in zip(small_model.get_weights(), twin.get_weights()):
            for key in a:
                np.testing.assert_array_equal(a[key], b[key])


class TestFlatten:
    def test_flatten_unflatten_roundtrip(self, small_model):
        weights = small_model.get_weights()
        flat = flatten_weights(weights)
        assert flat.ndim == 1
        restored = unflatten_weights(flat, weights)
        for a, b in zip(weights, restored):
            for key in a:
                np.testing.assert_array_equal(a[key], b[key])

    def test_flat_length_is_param_count(self, small_model):
        assert flatten_weights(small_model.get_weights()).size == small_model.param_count

    def test_unflatten_wrong_size_raises(self, small_model):
        weights = small_model.get_weights()
        with pytest.raises(ValueError, match="elements"):
            unflatten_weights(np.zeros(3), weights)

    def test_empty_weights(self):
        assert flatten_weights([]).size == 0

    @given(
        st.lists(
            st.tuples(st.integers(1, 4), st.integers(1, 4)), min_size=1, max_size=4
        )
    )
    def test_roundtrip_property(self, shapes):
        rng = np.random.default_rng(0)
        weights = [
            {"weight": rng.normal(size=s), "bias": rng.normal(size=(s[0],))}
            for s in shapes
        ]
        flat = flatten_weights(weights)
        restored = unflatten_weights(flat, weights)
        for a, b in zip(weights, restored):
            for key in a:
                np.testing.assert_allclose(a[key], b[key])

    @given(st.integers(0, 2**32 - 1))
    def test_bytes_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        weights = [{"weight": rng.normal(size=(3, 2))}, {"bias": rng.normal(size=4)}]
        restored = weights_from_bytes(weights_to_bytes(weights))
        np.testing.assert_array_equal(restored[0]["weight"], weights[0]["weight"])
        np.testing.assert_array_equal(restored[1]["bias"], weights[1]["bias"])
