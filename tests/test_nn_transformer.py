"""Transformer model family: tiny ViT / GPT blocks in the model zoo.

Builds, block/role metadata, multi-stream memory accounting, training, and
the compile-time planner invariant (planned secure-pool peak equals
``CostModel.tee_memory_bytes``) for every transformer × policy row.
"""

import numpy as np
import pytest

from repro.core.policy import (
    DynamicPolicy,
    NoProtection,
    PeltaPolicy,
    StaticPolicy,
)
from repro.graph.planner import plan_policy, plan_protection
from repro.nn import gpt_tiny, one_hot, vit_tiny
from repro.tee import CostModel


def _batch(model, n=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, *model.input_shape))
    y = one_hot(rng.integers(0, model.output_shape[-1], size=n), model.output_shape[-1])
    return x, y


class TestZooEntries:
    @pytest.mark.parametrize("factory", [vit_tiny, gpt_tiny])
    def test_builds_with_block_metadata(self, factory):
        model = factory(num_classes=10, seed=0)
        assert model.num_layers == 15  # embed + 2 blocks x 6 + ln_f + head
        layout = model.layout()
        assert layout.block_names() == ["block1", "block2"]
        roles = [layout.ref(i).role for i in range(2, 8)]
        assert roles == ["ln1", "qkv", "softmax", "attn_out", "ln2", "mlp"]

    @pytest.mark.parametrize("factory", [vit_tiny, gpt_tiny])
    def test_forward_shape_and_determinism(self, factory):
        a = factory(num_classes=7, seed=3)
        b = factory(num_classes=7, seed=3)
        x, _ = _batch(a, n=2)
        out_a, out_b = a.forward(x).data, b.forward(x).data
        assert out_a.shape == (2, 7)
        np.testing.assert_array_equal(out_a, out_b)

    def test_digests_distinguish_architectures(self):
        digests = {
            vit_tiny(seed=0).architecture_digest(),
            gpt_tiny(seed=0).architecture_digest(),
            vit_tiny(num_blocks=1, seed=0).architecture_digest(),
            vit_tiny(dim=24, seed=0).architecture_digest(),
        }
        assert len(digests) == 4

    def test_scale_shrinks_model(self):
        full = vit_tiny(seed=0)
        half = vit_tiny(seed=0, scale=0.5)
        assert half.param_count < full.param_count

    @pytest.mark.parametrize("factory", [vit_tiny, gpt_tiny])
    def test_training_reduces_loss(self, factory):
        model = factory(num_classes=4, seed=1)
        x, y = _batch(model, n=8, seed=1)
        first = float(model.loss(x, y).data)
        for _ in range(15):
            _, grads = model.loss_and_gradients(x, y)
            for layer, g in zip(model.layers, grads):
                for key, grad_t in g.items():
                    layer.params[key].data -= 0.1 * grad_t.data
        assert float(model.loss(x, y).data) < first

    def test_clone_is_bitwise(self):
        model = vit_tiny(seed=2)
        twin = model.clone()
        for wa, wb in zip(model.get_weights(), twin.get_weights()):
            assert set(wa) == set(wb)
            for key in wa:
                np.testing.assert_array_equal(wa[key], wb[key])
        assert twin.architecture_digest() == model.architecture_digest()


class TestMemoryAccounting:
    def test_multi_stream_elems_sum_streams(self):
        model = vit_tiny(seed=0)
        softmax = model.layer(4)  # (x, q, k, v) -> (x, a, v)
        assert softmax.param_count == 0
        assert softmax.input_elems() > softmax.output_elems() > 0
        # tee_memory_bytes = 4 * (2*params + in + 2*out) per sample
        per_sample = 4 * (softmax.input_elems() + 2 * softmax.output_elems())
        assert softmax.tee_memory_bytes(8) == 8 * per_sample

    @pytest.mark.parametrize("factory", [vit_tiny, gpt_tiny])
    def test_planner_matches_cost_model_for_every_policy(self, factory):
        """Planned secure-pool peak == CostModel.tee_memory_bytes, per row."""
        model = factory(num_classes=10, seed=0)
        layout = model.layout()
        batch = 16
        cost_model = CostModel(batch_size=batch)
        policies = [
            NoProtection(layout),
            PeltaPolicy(layout),
            PeltaPolicy(layout, blocks=["block2"]),
            PeltaPolicy(layout, size_mw=1, v_mw=(0.5, 0.5), seed=4),
            StaticPolicy(layout, ["block1.softmax", "block1.ln2"]),
            DynamicPolicy(layout, 3, (1 / 13,) * 13, seed=4),
        ]
        for policy in policies:
            worst, per_cycle = plan_policy(
                model, policy, batch_size=batch, cycles=6
            )
            for cycle, plan in enumerate(per_cycle):
                protected = policy.layers_for_cycle(cycle)
                # plan_protection itself asserts plan == CostModel; assert
                # again here so the invariant is visible in the test.
                assert plan.peak_bytes == cost_model.tee_memory_bytes(
                    model, protected
                )
            assert worst.peak_bytes == max(p.peak_bytes for p in per_cycle)

    def test_single_stream_layers_unchanged(self):
        """The multi-stream generalisation is invisible to conv layers."""
        from repro.nn import lenet5

        model = lenet5()
        for index in range(1, 6):
            layer = model.layer(index)
            in_elems = int(np.prod(layer.input_shape))
            out_elems = int(np.prod(layer.output_shape))
            expected = 4 * (
                2 * layer.param_count + 8 * in_elems + 2 * 8 * out_elems
            )
            assert layer.tee_memory_bytes(8) == expected
