"""The model zoo must match the paper's Table 4 layer for layer."""

import numpy as np
import pytest

from repro.nn import alexnet, lenet5, mlp, one_hot


class TestLeNet5:
    def test_table4_shapes(self):
        model = lenet5()
        expected = [
            ((3, 32, 32), (12, 16, 16)),
            ((12, 16, 16), (12, 8, 8)),
            ((12, 8, 8), (12, 8, 8)),
            ((12, 8, 8), (12, 8, 8)),
            ((768,), (100,)),
        ]
        for layer, (in_shape, out_shape) in zip(model.layers, expected):
            assert layer.input_shape == in_shape
            assert layer.output_shape == out_shape

    def test_l5_has_76800_weights(self):
        # The parameter count behind the paper's 4.68 s allocation time.
        assert lenet5().layer(5).weight_param_count == 76800

    def test_tee_memory_close_to_table6(self):
        """Per-layer TEE memory at batch 32 within 10% of the paper."""
        paper_mib = {1: 1.127, 2: 0.565, 3: 0.286, 4: 0.286, 5: 0.704}
        model = lenet5()
        for index, expected in paper_mib.items():
            measured = model.layer(index).tee_memory_bytes(32) / 2**20
            assert measured == pytest.approx(expected, rel=0.10)

    def test_scale_reduces_parameters(self):
        assert lenet5(scale=0.5).param_count < lenet5().param_count

    def test_forward_runs(self):
        model = lenet5(num_classes=10, scale=0.5)
        out = model.forward(np.zeros((2, 3, 32, 32)))
        assert out.shape == (2, 10)


class TestAlexNet:
    def test_table4_shapes(self):
        model = alexnet()
        expected_out = [
            (64, 8, 8),
            (192, 4, 4),
            (384, 4, 4),
            (256, 4, 4),
            (256, 2, 2),
            (4096,),
            (4096,),
            (100,),
        ]
        for layer, out_shape in zip(model.layers, expected_out):
            assert layer.output_shape == out_shape

    def test_dense_input_is_1024(self):
        assert alexnet().layer(6).input_shape == (1024,)

    def test_eight_layers(self):
        assert alexnet().num_layers == 8

    def test_scaled_alexnet_trains(self):
        model = alexnet(num_classes=5, scale=0.1)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 32, 32))
        y = one_hot(rng.integers(0, 5, 2), 5)
        loss, grads = model.loss_and_gradients(x, y)
        assert loss.item() > 0
        assert grads[7]["weight"].shape == model.layer(8).params["weight"].shape


class TestMLP:
    def test_depth(self):
        assert mlp(3, (4,), hidden=(8, 8, 8)).num_layers == 4

    def test_head_is_linear(self):
        model = mlp(3, (4,), hidden=(8,))
        assert model.layer(2).activation == "linear"
