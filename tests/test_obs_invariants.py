"""Deterministic invariant tests: overhead claims as executable checks.

These tests assert, through :mod:`repro.obs` metrics *alone*, the exact
world-switch counts and secure-memory high-water mark of a shielded
training round — and that those numbers agree with the monitor's own
``SMCStats`` and the pool's accounting, and with the analytical cost
model's memory formula.  Everything runs under a fake clock inside a fresh
observability context, so the expected values are exact equalities, not
bounds.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import ShieldedModel, StaticPolicy
from repro.nn import lenet5, one_hot
from repro.obs import FakeClock, validate_trace
from repro.tee import CostModel, SecureMemoryPool

NUM_CLASSES = 5
BATCH = 8


def make_batch(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(0.5, 0.2, size=(BATCH, 3, 32, 32))
    y = one_hot(rng.integers(0, NUM_CLASSES, BATCH), NUM_CLASSES)
    return x, y


def run_shielded_round(protected_layers, steps, pool_name):
    """One full protected cycle; returns (shielded, pool, ctx)."""
    with obs.fresh(clock=FakeClock()) as ctx:
        model = lenet5(num_classes=NUM_CLASSES, seed=0, scale=0.5)
        pool = SecureMemoryPool(name=pool_name)
        shielded = ShieldedModel(
            model,
            StaticPolicy(5, protected_layers),
            pool=pool,
            batch_size=BATCH,
        )
        x, y = make_batch()
        shielded.begin_cycle()
        for _ in range(steps):
            shielded.train_step(x, y, lr=0.05)
        shielded.end_cycle()
    return shielded, pool, ctx


class TestExactSMCCounts:
    """World-switch counts follow from the protection topology, exactly."""

    def test_contiguous_two_layer_round(self):
        """One protected slice: 2 x steps compute SMCs (fwd + bwd per step)."""
        steps = 3
        shielded, _, ctx = run_shielded_round((2, 3), steps, "inv-contig")
        calls = ctx.registry.counter("tee.smc.calls")
        ta = shielded.ta.name
        assert calls.value(ta=ta, command="forward_run") == steps
        assert calls.value(ta=ta, command="backward_run") == steps
        assert calls.value(ta=ta, command="protect") == 1
        assert calls.value(ta=ta, command="release") == 1
        # The headline invariant: compute crossings are exactly 2 x steps.
        compute = calls.value(ta=ta, command="forward_run") + calls.value(
            ta=ta, command="backward_run"
        )
        assert compute == 2 * steps
        assert calls.total() == 2 * steps + 2

    def test_non_contiguous_set_doubles_crossings(self):
        """{L2, L5} forms two runs, so each step crosses twice per direction."""
        steps = 2
        shielded, _, ctx = run_shielded_round((2, 5), steps, "inv-split")
        calls = ctx.registry.counter("tee.smc.calls")
        ta = shielded.ta.name
        assert calls.value(ta=ta, command="forward_run") == 2 * steps
        assert calls.value(ta=ta, command="backward_run") == 2 * steps
        assert calls.total() == 4 * steps + 2

    def test_metrics_agree_with_smc_stats(self):
        """The registry and the monitor's own counters are the same numbers."""
        shielded, _, ctx = run_shielded_round((2, 3), 3, "inv-agree")
        calls = ctx.registry.counter("tee.smc.calls")
        stats = shielded.monitor.stats
        assert calls.total() == stats.calls
        assert calls.value(ta=shielded.ta.name, command="forward_run") + sum(
            calls.value(ta=shielded.ta.name, command=c)
            for c in ("backward_run", "protect", "release")
        ) == stats.per_ta[shielded.ta.name]

    def test_smc_latency_histogram_is_deterministic(self):
        """Under the fake clock every SMC takes an identical span of time."""
        shielded, _, ctx = run_shielded_round((2, 3), 2, "inv-clock")
        seconds = ctx.registry.histogram("tee.smc.seconds")
        stats = seconds.stats(ta=shielded.ta.name)
        assert stats["count"] == shielded.monitor.stats.calls
        assert stats["min"] == stats["max"] > 0  # no wall-clock jitter


class TestSecureMemoryHighWater:
    def test_peak_matches_pool_and_cost_model(self):
        """Metrics high-water == pool accounting == analytic memory formula."""
        protected = (2, 3)
        shielded, pool, ctx = run_shielded_round(protected, 2, "inv-mem")
        peak = ctx.registry.gauge("tee.pool.peak_bytes").value(pool="inv-mem")
        assert peak == pool.peak_bytes > 0
        expected = CostModel(batch_size=BATCH).tee_memory_bytes(
            shielded.model, protected
        )
        assert peak == expected
        capacity = ctx.registry.gauge("tee.pool.capacity_bytes").value(
            pool="inv-mem"
        )
        assert capacity == pool.capacity_bytes
        assert peak <= capacity

    def test_allocation_counts_match(self):
        _, pool, ctx = run_shielded_round((2, 3), 1, "inv-allocs")
        allocations = ctx.registry.counter("tee.pool.allocations")
        assert allocations.value(pool="inv-allocs") == pool.allocation_count > 0

    def test_memory_released_after_cycle(self):
        _, pool, ctx = run_shielded_round((2, 3), 1, "inv-free")
        assert pool.used_bytes == 0
        assert ctx.registry.gauge("tee.pool.used_bytes").value(pool="inv-free") == 0
        # ... but the high-water mark survives for Table 6 style reporting.
        assert ctx.registry.gauge("tee.pool.peak_bytes").value(pool="inv-free") > 0

    def test_exhaustion_is_counted(self):
        with obs.fresh(clock=FakeClock()) as ctx:
            pool = SecureMemoryPool(capacity_bytes=64, name="inv-oom")
            from repro.tee import SecureMemoryExhausted

            with pytest.raises(SecureMemoryExhausted):
                pool.allocate(65)
            assert ctx.registry.counter("tee.pool.exhaustions").value(
                pool="inv-oom"
            ) == 1


class TestTraceInvariants:
    def test_round_trace_is_schema_valid_and_ordered(self):
        shielded, _, ctx = run_shielded_round((2, 3), 2, "inv-trace")
        payload = ctx.tracer.export()
        validate_trace(payload)
        starts = [span["start"] for span in payload["spans"]]
        # Creation order == span-id order == strictly increasing fake time.
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)
        smc_spans = [s for s in payload["spans"] if s["name"] == "tee.smc"]
        assert len(smc_spans) == shielded.monitor.stats.calls

    def test_trace_is_reproducible(self):
        """Two identical runs emit bit-identical traces."""
        _, _, ctx_a = run_shielded_round((2, 3), 2, "inv-repro")
        _, _, ctx_b = run_shielded_round((2, 3), 2, "inv-repro")
        assert ctx_a.tracer.export() == ctx_b.tracer.export()
        assert (
            ctx_a.registry.snapshot()["counters"]
            == ctx_b.registry.snapshot()["counters"]
        )
