"""Differential leakage invariants, proven through the observability layer.

For both static and moving-window protection these tests assert the two
halves of the GradSec guarantee:

* *the protected computation really happened in the secure world* — for
  every protected layer of every cycle there is a ``tee.smc`` span whose
  ``forward_run``/``backward_run`` indices cover it (the span is only
  opened by the monitor around a world switch);
* *the normal world cannot reach the protected state* — reading a
  protected layer's shielded buffer from outside the secure world raises
  :class:`SecureWorldViolation`, through every access path numpy offers.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import DynamicPolicy, ShieldedModel, StaticPolicy
from repro.nn import lenet5, one_hot
from repro.obs import FakeClock
from repro.tee import SecureMemoryPool, SecureWorldViolation

NUM_CLASSES = 5
BATCH = 8


def make_batch(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(0.5, 0.2, size=(BATCH, 3, 32, 32))
    y = one_hot(rng.integers(0, NUM_CLASSES, BATCH), NUM_CLASSES)
    return x, y


def make_shielded(policy, pool_name):
    model = lenet5(num_classes=NUM_CLASSES, seed=0, scale=0.5)
    return ShieldedModel(
        model, policy, pool=SecureMemoryPool(name=pool_name), batch_size=BATCH
    )


def covered_indices(spans, command):
    """Layer indices that appeared in any ``command`` SMC span."""
    covered = set()
    for span in spans:
        if span.name == "tee.smc" and span.attributes.get("command") == command:
            covered.update(span.attributes.get("indices", []))
    return covered


class TestStaticProtection:
    def test_every_protected_layer_crossed_the_boundary(self):
        protected = (2, 5)
        with obs.fresh(clock=FakeClock()) as ctx:
            shielded = make_shielded(StaticPolicy(5, protected), "leak-static")
            x, y = make_batch()
            shielded.begin_cycle()
            shielded.train_step(x, y, lr=0.05)
            shielded.end_cycle()
            spans = ctx.tracer.finished_spans()
        for direction in ("forward_run", "backward_run"):
            assert covered_indices(spans, direction) == set(protected)

    def test_unprotected_layers_never_cross(self):
        with obs.fresh(clock=FakeClock()) as ctx:
            shielded = make_shielded(StaticPolicy(5, (2, 3)), "leak-rest")
            x, y = make_batch()
            shielded.begin_cycle()
            shielded.train_step(x, y, lr=0.05)
            shielded.end_cycle()
            spans = ctx.tracer.finished_spans()
        crossed = covered_indices(spans, "forward_run") | covered_indices(
            spans, "backward_run"
        )
        assert crossed == {2, 3}  # L1, L4, L5 stayed in the normal world

    def test_normal_world_buffer_access_raises(self):
        with obs.fresh(clock=FakeClock()):
            shielded = make_shielded(StaticPolicy(5, (2, 5)), "leak-access")
            x, y = make_batch()
            shielded.begin_cycle()
            shielded.train_step(x, y, lr=0.05)
            # Mid-cycle the protected weights live only in shielded buffers;
            # every normal-world exfiltration path must fail closed.
            for (index, name), buffer in shielded.ta._buffers.items():
                assert index in (2, 5)
                with pytest.raises(SecureWorldViolation):
                    buffer.read()
                with pytest.raises(SecureWorldViolation):
                    buffer.view()
                with pytest.raises(SecureWorldViolation):
                    np.asarray(buffer)
            shielded.end_cycle()

    def test_scrubbed_normal_copies_are_zero(self):
        """What the attacker *can* read of protected layers is all zeros."""
        with obs.fresh(clock=FakeClock()):
            shielded = make_shielded(StaticPolicy(5, (2,)), "leak-scrub")
            x, y = make_batch()
            shielded.begin_cycle()
            shielded.train_step(x, y, lr=0.05)
            for param in shielded.model.layer(2).params.values():
                assert not param.data.any()
            shielded.end_cycle()


class TestMovingWindowProtection:
    def make_policy(self):
        # Window of 2 over 5 layers: 4 positions, uniform draw.
        return DynamicPolicy(5, 2, [0.25, 0.25, 0.25, 0.25], seed=11)

    def test_each_cycles_window_is_covered(self):
        policy = self.make_policy()
        cycles = 3
        with obs.fresh(clock=FakeClock()) as ctx:
            shielded = make_shielded(policy, "leak-mw")
            x, y = make_batch()
            windows = []
            boundaries = []
            for _ in range(cycles):
                before = len(ctx.tracer.finished_spans())
                shielded.begin_cycle()
                windows.append(shielded.protected_layers)
                shielded.train_step(x, y, lr=0.05)
                shielded.end_cycle()
                boundaries.append((before, len(ctx.tracer.finished_spans())))
            spans = ctx.tracer.finished_spans()
        assert len({tuple(sorted(w)) for w in windows}) > 1  # window moved
        for window, (lo, hi) in zip(windows, boundaries):
            cycle_spans = spans[lo:hi]
            for direction in ("forward_run", "backward_run"):
                assert covered_indices(cycle_spans, direction) == set(window)

    def test_moving_window_buffers_fail_closed(self):
        policy = self.make_policy()
        with obs.fresh(clock=FakeClock()):
            shielded = make_shielded(policy, "leak-mw-access")
            x, y = make_batch()
            shielded.begin_cycle()
            shielded.train_step(x, y, lr=0.05)
            window = shielded.protected_layers
            touched = set()
            for (index, _name), buffer in shielded.ta._buffers.items():
                touched.add(index)
                with pytest.raises(SecureWorldViolation):
                    buffer.read()
            assert touched == set(window)
            shielded.end_cycle()

    def test_window_draw_matches_policy_metrics_free(self):
        """The windows the spans prove executed are the policy's own draws."""
        policy = self.make_policy()
        replay = self.make_policy()
        with obs.fresh(clock=FakeClock()):
            shielded = make_shielded(policy, "leak-mw-replay")
            x, y = make_batch()
            observed = []
            for _ in range(3):
                shielded.begin_cycle()
                observed.append(shielded.protected_layers)
                shielded.train_step(x, y, lr=0.05)
                shielded.end_cycle()
        expected = [replay.layers_for_cycle(c) for c in range(3)]
        assert observed == expected
