"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import threading

import pytest

from repro.obs import FakeClock, MetricsRegistry, fresh, get_registry, label_key


class TestLabelKey:
    def test_sorted_and_canonical(self):
        assert label_key({"b": 2, "a": "x"}) == "a=x,b=2"

    def test_empty(self):
        assert label_key({}) == ""


class TestCounter:
    def test_starts_at_zero(self):
        counter = MetricsRegistry().counter("c")
        assert counter.value() == 0
        assert counter.total() == 0

    def test_increments_per_label_series(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(ta="a")
        counter.inc(2, ta="a")
        counter.inc(ta="b")
        assert counter.value(ta="a") == 3
        assert counter.value(ta="b") == 1
        assert counter.total() == 4

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter("c").inc(-1)

    def test_exact_under_concurrency(self):
        """The lock makes counts exact, not approximate."""
        counter = MetricsRegistry().counter("c")
        per_thread = 500

        def hammer():
            for _ in range(per_thread):
                counter.inc(worker="shared")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value(worker="shared") == 4 * per_thread


class TestGauge:
    def test_set_and_read(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5, pool="p")
        gauge.set(3, pool="p")
        assert gauge.value(pool="p") == 3

    def test_set_max_keeps_high_water(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set_max(5, pool="p")
        gauge.set_max(3, pool="p")
        gauge.set_max(9, pool="p")
        assert gauge.value(pool="p") == 9

    def test_add(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.add(2)
        gauge.add(-0.5)
        assert gauge.value() == 1.5


class TestHistogram:
    def test_summary_statistics(self):
        hist = MetricsRegistry().histogram("h")
        for value in (3.0, 1.0, 2.0):
            hist.observe(value, op="x")
        stats = hist.stats(op="x")
        assert stats == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0}
        assert hist.count(op="x") == 3

    def test_missing_series(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.stats(op="nope") is None
        assert hist.count(op="nope") == 0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="is a counter"):
            registry.gauge("x")

    def test_snapshot_is_plain_json(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc(ta="a")
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.25, op="y")
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["counters"]["c"] == {"ta=a": 1.0}
        assert snap["gauges"]["g"] == {"": 1.5}
        assert snap["histograms"]["h"]["op=y"]["count"] == 1

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.names() == ()
        assert registry.counter("c").value() == 0


class TestContext:
    def test_fresh_swaps_and_restores(self):
        outer = get_registry()
        with fresh(clock=FakeClock()) as ctx:
            assert get_registry() is ctx.registry
            assert get_registry() is not outer
            ctx.registry.counter("inside").inc()
        assert get_registry() is outer
        assert "inside" not in outer.names()

    def test_fresh_restores_after_exception(self):
        outer = get_registry()
        with pytest.raises(RuntimeError):
            with fresh():
                raise RuntimeError("boom")
        assert get_registry() is outer
