"""Unit tests for the tracer, the fake clock, and trace-schema validation."""

import threading

import pytest

from repro.obs import (
    FakeClock,
    MonotonicClock,
    TraceValidationError,
    Tracer,
    trace_errors,
    validate_trace,
)


class TestFakeClock:
    def test_reads_advance_deterministically(self):
        clock = FakeClock(start=10.0, tick=0.5)
        assert clock.now() == 10.0
        assert clock.now() == 10.5
        assert clock.reads == 2

    def test_advance(self):
        clock = FakeClock()
        clock.advance(100.0)
        assert clock.now() == pytest.approx(100.0)

    def test_backwards_advance_rejected(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1)

    def test_monotonic_clock_increases(self):
        clock = MonotonicClock()
        assert clock.now() <= clock.now()


class TestTracer:
    def test_span_records_times_from_clock(self):
        tracer = Tracer(clock=FakeClock(tick=1.0))
        with tracer.span("work") as span:
            pass
        assert span.start == 0.0
        assert span.end == 1.0
        assert span.duration == 1.0

    def test_nesting_assigns_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_sibling_spans_share_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == outer.span_id == b.parent_id

    def test_exception_marks_error_and_closes(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.finished_spans()
        assert span.attributes["error"] is True
        assert span.end is not None
        assert tracer.current_span() is None

    def test_worker_thread_spans_are_roots(self):
        tracer = Tracer(clock=FakeClock())
        done = threading.Event()

        def work():
            with tracer.span("worker-side"):
                pass
            done.set()

        with tracer.span("main-side"):
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        assert done.is_set()
        (worker_span,) = tracer.find("worker-side")
        assert worker_span.parent_id is None

    def test_find_filters_by_attributes(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("smc", command="forward_run"):
            pass
        with tracer.span("smc", command="release"):
            pass
        assert len(tracer.find("smc")) == 2
        assert len(tracer.find("smc", command="release")) == 1

    def test_attribute_type_checked(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(TypeError, match="not a JSON scalar"):
            with tracer.span("bad", blob={"nested": "dict"}):
                pass

    def test_max_spans_cap_counts_drops(self):
        tracer = Tracer(clock=FakeClock(), max_spans=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        exported = tracer.export()
        assert len(exported["spans"]) == 2
        assert exported["dropped"] == 3

    def test_reset(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.finished_spans() == []
        with tracer.span("t") as span:
            pass
        assert span.span_id == 1


class TestExportAndValidation:
    def make_valid(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("round", cycle=0):
            with tracer.span("smc", command="forward_run", indices=[2, 3]):
                pass
        return tracer.export()

    def test_valid_trace_passes(self):
        payload = self.make_valid()
        assert trace_errors(payload) == []
        validate_trace(payload)  # must not raise

    def test_export_is_json_serialisable(self):
        import json

        payload = self.make_valid()
        assert json.loads(json.dumps(payload)) == payload

    def test_wrong_schema_version(self):
        payload = self.make_valid()
        payload["schema"] = 99
        assert any("schema" in e for e in trace_errors(payload))

    def test_missing_field_flagged(self):
        payload = self.make_valid()
        del payload["spans"][0]["thread"]
        assert any("missing fields" in e for e in trace_errors(payload))

    def test_end_before_start_flagged(self):
        payload = self.make_valid()
        payload["spans"][0]["end"] = payload["spans"][0]["start"] - 1
        assert any("precedes start" in e for e in trace_errors(payload))

    def test_dangling_parent_flagged(self):
        payload = self.make_valid()
        child = [s for s in payload["spans"] if s["parent_id"] is not None][0]
        child["parent_id"] = 999
        assert any("missing parent" in e for e in trace_errors(payload))

    def test_child_escaping_parent_interval_flagged(self):
        payload = self.make_valid()
        child = [s for s in payload["spans"] if s["parent_id"] is not None][0]
        child["end"] = 1e9
        assert any("escapes parent" in e for e in trace_errors(payload))

    def test_duplicate_ids_flagged(self):
        payload = self.make_valid()
        payload["spans"][1]["span_id"] = payload["spans"][0]["span_id"]
        errors = trace_errors(payload)
        assert any("duplicate" in e or "ascending" in e for e in errors)

    def test_validate_raises_with_all_errors(self):
        payload = self.make_valid()
        payload["schema"] = 99
        payload["dropped"] = -1
        with pytest.raises(TraceValidationError) as excinfo:
            validate_trace(payload)
        assert len(excinfo.value.errors) >= 2

    def test_non_dict_payload(self):
        assert trace_errors([1, 2]) != []
