"""End-to-end chaos: faults never change the committed bytes.

The headline invariant of the chaos transport: for ANY chaos seed and
fault rate, the final weights (and their sha256) are bitwise identical
to the fault-free run — drops, duplicates, reorders, corruption,
truncation and stale replays only cost retransmissions and virtual
time, never correctness.  The fault-free baseline is the same pipeline
at ``chaos_rate=0`` (same seq-ordered ledger, zero faults).
"""

import hashlib
import json
import os

import pytest

from repro import obs
from repro.obs import VirtualClock
from repro.serve import BreakerConfig, LoadSpec, ServeHarness
from repro.tee.storage import InMemoryBackend, SecureStorage

pytestmark = [pytest.mark.serve, pytest.mark.chaos]


def spec(**overrides):
    base = dict(
        tenant="t0",
        job_id="j0",
        clients=40,
        commits=3,
        buffer_size=8,
        concurrency=16,
        seed=11,
        chaos=True,
    )
    base.update(overrides)
    return LoadSpec(**base)


def run_harness(specs, *, storage=None, resume=False, max_events=None, **kwargs):
    with obs.fresh(clock=VirtualClock()) as ctx:
        with ServeHarness(specs, storage=storage, clock=ctx.clock, **kwargs) as h:
            if resume:
                assert h.restore(), "expected a checkpoint to resume from"
            report = h.run(max_events=max_events)
            return report, h.finished


def report_bytes(report):
    return json.dumps(report, sort_keys=True).encode()


def storage_for(tmp_path):
    return SecureStorage(
        InMemoryBackend(),
        ssk=hashlib.sha256(b"chaos-test").digest(),
        counters_path=os.path.join(tmp_path, "counters.json"),
    )


@pytest.fixture(scope="module")
def baseline():
    report, finished = run_harness([spec(chaos_rate=0.0)])
    assert finished
    return report


class TestWeightsBitwiseInvariant:
    @pytest.mark.parametrize("rate", [0.05, 0.1, 0.2])
    @pytest.mark.parametrize("chaos_seed", [0, 1])
    def test_sha_matches_fault_free_at_any_rate_and_seed(
        self, baseline, rate, chaos_seed
    ):
        report, finished = run_harness(
            [spec(chaos_rate=rate, chaos_seed=chaos_seed)]
        )
        assert finished
        job = report["jobs"][0]
        assert job["weights_sha256"] == baseline["jobs"][0]["weights_sha256"]
        transport = job["transport"]
        # Channel-side and ledger-side duplicate counts must agree when
        # nothing was shed or refused: every redundant clean delivery is
        # exactly one dedup hit.
        assert transport["shed"] == 0 and transport["refused"] == 0
        assert transport["dedup_hits"] == transport["dup_clean_deliveries"]
        # Delivery conservation: every uplink arrival is accounted exactly
        # once by the ingest path (folded, deduped, terminal, or rejected).
        assert transport["deliveries"] == (
            transport["inserts"]
            + transport["dedup_hits"]
            + transport["terminal"]
            + transport["shed"]
            + transport["refused"]
            + transport["corrupt_frames"]
        )
        # The drain never outruns what was inserted.
        assert transport["cursor"] <= transport["inserts"]

    def test_same_chaos_seed_is_byte_identical(self):
        specs = [spec(chaos_rate=0.15, chaos_seed=5)]
        a, _ = run_harness(specs)
        b, _ = run_harness(specs)
        assert report_bytes(a) == report_bytes(b)

    def test_different_chaos_seed_changes_the_weather_not_the_weights(self):
        a, _ = run_harness([spec(chaos_rate=0.2, chaos_seed=0)])
        b, _ = run_harness([spec(chaos_rate=0.2, chaos_seed=9)])
        ja, jb = a["jobs"][0], b["jobs"][0]
        assert ja["weights_sha256"] == jb["weights_sha256"]
        assert ja["transport"]["drops"] != jb["transport"]["drops"] or (
            ja["transport"]["sends"] != jb["transport"]["sends"]
        )

    def test_faults_cost_retransmissions(self):
        report, _ = run_harness([spec(chaos_rate=0.2, chaos_seed=0)])
        transport = report["jobs"][0]["transport"]
        assert transport["drops"] > 0
        assert transport["retransmits"] > 0
        assert transport["copies"] >= transport["sends"]
        assert 0 < transport["goodput"] <= 1
        assert transport["retransmit_overhead"] > 0


class TestKillResumeUnderChaos:
    def test_mid_chaos_resume_is_report_byte_identical(self, tmp_path):
        specs = [spec(chaos_rate=0.15, chaos_seed=3)]
        uninterrupted, _ = run_harness(specs)
        for cut in (5, 37, 90):
            storage = storage_for(tmp_path)
            _, finished = run_harness(specs, storage=storage, max_events=cut)
            if finished:
                continue
            resumed, finished = run_harness(specs, storage=storage, resume=True)
            assert finished
            assert report_bytes(resumed) == report_bytes(uninterrupted), cut


class TestBreakerUnderChaos:
    def test_breaker_trips_but_weights_are_unchanged(self, baseline):
        report, finished = run_harness(
            [spec(chaos_rate=0.2, chaos_seed=0)],
            breaker=BreakerConfig(error_budget=1, window=60.0, cooldown=2.0),
        )
        assert finished
        job = report["jobs"][0]
        transport = job["transport"]
        assert transport["breaker_trips"] >= 1
        assert transport["shed"] >= 1
        # Shedding only delays deliveries; the ledger keeps the committed
        # bytes identical to the breakerless fault-free run.
        assert job["weights_sha256"] == baseline["jobs"][0]["weights_sha256"]


class TestFaultFreeByteAccounting:
    """Satellite 3: the classic (non-chaos) wire path costs what it did
    before the chaos transport landed — v1 frames kept their byte length
    (the strengthened CRC covers more bytes without adding any), so these
    totals are pinned to the pre-chaos goldens."""

    GOLDEN_BYTES_UP = 25056
    GOLDEN_BYTES_DOWN = 41280

    def test_v1_pipeline_byte_totals_are_pinned(self):
        report, finished = run_harness([spec(chaos=False)])
        assert finished
        job = report["jobs"][0]
        assert job["bytes_up"] == self.GOLDEN_BYTES_UP
        assert job["bytes_down"] == self.GOLDEN_BYTES_DOWN
        assert "transport" not in job  # no chaos section on the clean path

    def test_chaos_accounting_charges_every_physical_copy(self):
        report, _ = run_harness([spec(chaos_rate=0.1, chaos_seed=1)])
        job = report["jobs"][0]
        transport = job["transport"]
        # Uplink bytes must exceed the pure-payload cost whenever the
        # channel duplicated or retransmitted anything.
        assert transport["copies"] > transport["sends"] - transport["drops"] or (
            transport["retransmits"] == 0
        )
        assert job["bytes_up"] > 0 and job["bytes_down"] > 0
