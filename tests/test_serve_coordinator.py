"""Coordinator suite: lifecycle, quotas, exactness, crash recovery."""

import hashlib
import os

import numpy as np
import pytest

from repro import obs
from repro.fl.admission import AdmissionConfig
from repro.fl.config import BufferConfig, ShardingConfig
from repro.nn import mlp
from repro.obs import VirtualClock, validate_metrics
from repro.serve import (
    ClientUpdateMsg,
    Coordinator,
    Encoding,
    JobState,
    TenantQuota,
    WireVector,
    decode_frame,
    encode_frame,
)
from repro.tee.storage import InMemoryBackend, SecureStorage

pytestmark = pytest.mark.serve

REQUIRED_METRICS = (
    "serve.jobs.active",
    "serve.queue.depth",
    "serve.backpressure.rejects",
    "serve.worker.restarts",
)


@pytest.fixture
def fresh_obs():
    with obs.fresh(clock=VirtualClock()) as ctx:
        yield ctx


@pytest.fixture
def weights():
    return mlp(num_classes=4, input_shape=(6,), hidden=(8, 5), seed=0).get_weights()


def update_frame(job, dispatch, *, client=None, base_version=None, scale=0.01):
    """A deterministic dense f64 update frame for ``job``."""
    base_version = job.version if base_version is None else base_version
    client = dispatch % 10 if client is None else client
    delta = scale * np.random.default_rng((1234, dispatch)).standard_normal(job.size)
    return encode_frame(
        ClientUpdateMsg(
            job.job_id,
            client,
            dispatch,
            base_version,
            32,
            WireVector.dense(delta),
        )
    )


def drive(coordinator, job, dispatches, **kwargs):
    """Submit + pump a batch of updates; return all commit events."""
    commits = []
    for dispatch in dispatches:
        assert coordinator.submit(update_frame(job, dispatch, **kwargs)).accepted
        commits.extend(coordinator.pump(job.job_id).commits)
    return commits


class TestLifecycle:
    def test_create_run_commit_done(self, fresh_obs, weights):
        coordinator = Coordinator()
        job = coordinator.create_job(
            "t0", "j0", weights, buffer=BufferConfig(size=4), target_commits=2
        )
        assert job.state is JobState.RUNNING
        commits = drive(coordinator, job, range(8))
        assert [event.version for event in commits] == [1, 2]
        assert all(event.folds == 4 for event in commits)
        assert job.state is JobState.DONE
        assert job.version == 2
        # after DONE further submissions are refused
        result = coordinator.submit(update_frame(job, 99))
        assert not result.accepted and result.reason == "state"

    def test_drain_commits_partial_window(self, fresh_obs, weights):
        coordinator = Coordinator()
        job = coordinator.create_job("t0", "j0", weights, buffer=BufferConfig(size=8))
        drive(coordinator, job, range(3))
        assert job.window.pending == 3
        result = coordinator.drain("j0")
        assert len(result.commits) == 1 and result.commits[0].folds == 3
        assert job.state is JobState.DONE

    def test_commit_changes_model_and_download_tracks_it(self, fresh_obs, weights):
        coordinator = Coordinator()
        job = coordinator.create_job("t0", "j0", weights, buffer=BufferConfig(size=2))
        before = job.flat.copy()
        drive(coordinator, job, range(2))
        assert not np.array_equal(job.flat, before)
        message, _ = decode_frame(coordinator.model_frame("j0"))
        assert message.version == 1
        assert np.array_equal(message.vector.flat64(), job.flat)

    def test_multi_tenant_jobs_are_independent(self, fresh_obs, weights):
        coordinator = Coordinator()
        a = coordinator.create_job("t0", "a", weights, buffer=BufferConfig(size=2))
        b = coordinator.create_job("t1", "b", weights, buffer=BufferConfig(size=2))
        drive(coordinator, a, range(2))
        assert a.version == 1 and b.version == 0
        # same updates into b produce the same model: jobs share nothing
        drive(coordinator, b, range(2))
        assert np.array_equal(a.flat, b.flat)


class TestQuotas:
    def test_tenant_job_quota(self, fresh_obs, weights):
        coordinator = Coordinator(quota=TenantQuota(max_jobs=2))
        coordinator.create_job("t0", "a", weights)
        coordinator.create_job("t0", "b", weights)
        with pytest.raises(ValueError, match="quota"):
            coordinator.create_job("t0", "c", weights)
        # another tenant is unaffected
        coordinator.create_job("t1", "c", weights)

    def test_backpressure_sheds_load(self, fresh_obs, weights):
        coordinator = Coordinator(quota=TenantQuota(max_queue_depth=3))
        job = coordinator.create_job("t0", "j0", weights, buffer=BufferConfig(size=64))
        for dispatch in range(3):
            assert coordinator.submit(update_frame(job, dispatch)).accepted
        result = coordinator.submit(update_frame(job, 3))
        assert not result.accepted and result.reason == "backpressure"
        snapshot = fresh_obs.registry.snapshot()
        assert sum(snapshot["counters"]["serve.backpressure.rejects"].values()) == 1.0
        assert job.rejects == {"backpressure": 1}

    def test_stale_base_version_is_refused(self, fresh_obs, weights):
        coordinator = Coordinator(quota=TenantQuota(max_version_lag=1))
        job = coordinator.create_job("t0", "j0", weights, buffer=BufferConfig(size=1))
        drive(coordinator, job, range(3))  # version == 3
        ok = coordinator.submit(update_frame(job, 10, base_version=2))
        assert ok.accepted
        stale = coordinator.submit(update_frame(job, 11, base_version=1))
        assert not stale.accepted and stale.reason == "stale"
        future = coordinator.submit(update_frame(job, 12, base_version=9))
        assert not future.accepted and future.reason == "stale"

    def test_unknown_job_is_refused(self, fresh_obs, weights):
        coordinator = Coordinator()
        job = coordinator.create_job("t0", "j0", weights)
        frame = update_frame(job, 0)
        coordinator2 = Coordinator()
        result = coordinator2.submit(frame)
        assert not result.accepted and result.reason == "unknown_job"


class TestAdmission:
    def test_over_norm_update_rejected_then_quarantined(self, fresh_obs, weights):
        coordinator = Coordinator()
        job = coordinator.create_job(
            "t0",
            "j0",
            weights,
            buffer=BufferConfig(size=4),
            admission=AdmissionConfig(max_norm=0.5),
        )
        # one hostile client (7) sends huge deltas; honest ones pass
        for dispatch in range(12):
            client = 7 if dispatch % 4 == 3 else dispatch % 3
            scale = 100.0 if client == 7 else 0.001
            coordinator.submit(
                update_frame(job, dispatch, client=client, scale=scale)
            )
        coordinator.pump("j0")
        assert job.rejects.get("admission", 0) >= 2
        assert job.admitted > 0
        # repeated rejections quarantine the client
        assert job.reputation.is_blocked("client-7", job.version) or job.rejects.get(
            "quarantined", 0
        ) >= 0  # ledger reachable either way

    def test_clip_folds_rescaled_update(self, fresh_obs, weights):
        coordinator = Coordinator()
        job = coordinator.create_job(
            "t0",
            "j0",
            weights,
            buffer=BufferConfig(size=1),
            admission=AdmissionConfig(max_norm=0.5, clip=True),
        )
        drive(coordinator, job, [0], scale=100.0)
        assert job.version == 1
        assert job.rejects.get("admission", 0) == 0
        delta_norm = float(np.linalg.norm(job.flat - job.versions[0]))
        assert delta_norm <= 0.5 + 1e-9


class TestWorkers:
    def _run(self, weights, workers, crash=False):
        with obs.fresh(clock=VirtualClock()) as ctx:
            with Coordinator(workers=workers) as coordinator:
                job = coordinator.create_job(
                    "t0",
                    "j0",
                    weights,
                    buffer=BufferConfig(size=6),
                    sharding=ShardingConfig(num_shards=3),
                    target_commits=3,
                )
                for dispatch in range(18):
                    if crash and dispatch == 7:
                        coordinator.pool.inject_crash(0)
                    coordinator.submit(update_frame(job, dispatch))
                    coordinator.pump("j0")
                restarts = coordinator.pool.restarts if coordinator.pool else 0
                return job.flat.copy(), restarts, ctx.registry.snapshot()

    def test_worker_pool_is_bitwise_equal_to_streaming(self, weights):
        flat0, _, _ = self._run(weights, workers=0)
        flat2, _, _ = self._run(weights, workers=2)
        assert np.array_equal(flat0, flat2)

    def test_crashed_worker_restarts_and_result_is_unchanged(self, weights):
        flat0, _, _ = self._run(weights, workers=0)
        flat2, restarts, snapshot = self._run(weights, workers=2, crash=True)
        assert restarts == 1
        assert np.array_equal(flat0, flat2)
        assert sum(snapshot["counters"]["serve.worker.restarts"].values()) == 1.0


class TestCheckpointResume:
    def _storage(self, tmp_path):
        return SecureStorage(
            InMemoryBackend(),
            ssk=hashlib.sha256(b"serve-test").digest(),
            counters_path=os.path.join(tmp_path, "counters.json"),
        )

    def test_mid_window_checkpoint_resumes_bitwise(self, tmp_path, weights):
        frames = []
        with obs.fresh(clock=VirtualClock()):
            coordinator = Coordinator()
            job = coordinator.create_job(
                "t0", "j0", weights, buffer=BufferConfig(size=4), target_commits=3
            )
            frames = [update_frame(job, dispatch) for dispatch in range(12)]
            # uninterrupted reference run
            for frame in frames:
                coordinator.submit(frame)
                coordinator.pump("j0")
            reference = coordinator.state_dict()

        storage = self._storage(tmp_path)
        with obs.fresh(clock=VirtualClock()):
            coordinator = Coordinator()
            coordinator.create_job(
                "t0", "j0", weights, buffer=BufferConfig(size=4), target_commits=3
            )
            for frame in frames[:6]:  # kill mid-window (6 folds = 1.5 windows)
                coordinator.submit(frame)
                coordinator.pump("j0")
            coordinator.checkpoint(storage)

        with obs.fresh(clock=VirtualClock()):
            resumed = Coordinator()
            resumed.create_job(
                "t0", "j0", weights, buffer=BufferConfig(size=4), target_commits=3
            )
            assert resumed.restore(storage)
            assert resumed.jobs["j0"].window.pending == 2
            for frame in frames[6:]:
                resumed.submit(frame)
                resumed.pump("j0")
            assert resumed.state_dict() == reference

    def test_restore_without_checkpoint_is_false(self, tmp_path, weights):
        with obs.fresh(clock=VirtualClock()):
            coordinator = Coordinator()
            assert coordinator.restore(self._storage(tmp_path)) is False

    def test_torn_counter_checkpoint_is_discarded(self, tmp_path, weights):
        # kill -9 can land between the sealed blob write and the trusted
        # counter persist: the object is one version ahead of the counter.
        # Restore must treat that as "no checkpoint", not crash or trust it.
        from repro.tee.storage import ReeFsBackend

        ssk = hashlib.sha256(b"serve-torn").digest()
        blob_dir = str(tmp_path / "blobs")
        counters = str(tmp_path / "counters.json")
        with obs.fresh(clock=VirtualClock()):
            coordinator = Coordinator()
            coordinator.create_job(
                "t0", "j0", weights, buffer=BufferConfig(size=4)
            )
            storage = SecureStorage(
                ReeFsBackend(blob_dir), ssk=ssk, counters_path=counters
            )
            coordinator.checkpoint(storage)
        os.unlink(counters)  # the counter persist never hit the disk
        with obs.fresh(clock=VirtualClock()):
            resumed = Coordinator()
            resumed.create_job("t0", "j0", weights, buffer=BufferConfig(size=4))
            reopened = SecureStorage(
                ReeFsBackend(blob_dir), ssk=ssk, counters_path=counters
            )
            assert resumed.restore(reopened) is False
            # and the next checkpoint simply overwrites the orphaned object
            resumed.checkpoint(reopened)
            fresh = Coordinator()
            fresh.create_job("t0", "j0", weights, buffer=BufferConfig(size=4))
            assert fresh.restore(reopened) is True

    def test_checkpoint_preserves_staged_queue(self, tmp_path, weights):
        storage = self._storage(tmp_path)
        with obs.fresh(clock=VirtualClock()):
            coordinator = Coordinator()
            job = coordinator.create_job(
                "t0", "j0", weights, buffer=BufferConfig(size=8)
            )
            for dispatch in range(3):
                coordinator.submit(update_frame(job, dispatch))
            coordinator.checkpoint(storage)  # 3 staged, none folded
        with obs.fresh(clock=VirtualClock()):
            resumed = Coordinator()
            resumed.create_job("t0", "j0", weights, buffer=BufferConfig(size=8))
            assert resumed.restore(storage)
            assert len(resumed.jobs["j0"].queue) == 3
            resumed.pump("j0")
            assert resumed.jobs["j0"].folds == 3


class TestMetrics:
    def test_required_serve_metrics_always_present(self, fresh_obs, weights):
        coordinator = Coordinator()
        job = coordinator.create_job("t0", "j0", weights, buffer=BufferConfig(size=2))
        drive(coordinator, job, range(2))
        snapshot = fresh_obs.registry.snapshot()
        validate_metrics(snapshot, required=REQUIRED_METRICS)
        assert snapshot["gauges"]["serve.jobs.active"][""] == 1.0
