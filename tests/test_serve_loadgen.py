"""Load-generator / harness suite: determinism, compression, kill/resume."""

import hashlib
import json
import os

import pytest

from repro import obs
from repro.obs import VirtualClock
from repro.serve import LoadSpec, ServeHarness, TenantQuota
from repro.tee.storage import InMemoryBackend, SecureStorage

pytestmark = pytest.mark.serve


def run_harness(specs, *, workers=0, storage=None, resume=False, max_events=None, **kwargs):
    with obs.fresh(clock=VirtualClock()) as ctx:
        with ServeHarness(
            specs, workers=workers, storage=storage, clock=ctx.clock, **kwargs
        ) as harness:
            if resume:
                assert harness.restore(), "expected a checkpoint to resume from"
            report = harness.run(max_events=max_events)
            return report, harness.finished


def report_bytes(report):
    return json.dumps(report, sort_keys=True).encode()


def spec(**overrides):
    base = dict(
        tenant="t0",
        job_id="j0",
        clients=60,
        commits=3,
        buffer_size=8,
        concurrency=16,
        seed=11,
    )
    base.update(overrides)
    return LoadSpec(**base)


def storage_for(tmp_path):
    return SecureStorage(
        InMemoryBackend(),
        ssk=hashlib.sha256(b"loadgen-test").digest(),
        counters_path=os.path.join(tmp_path, "counters.json"),
    )


class TestDeterminism:
    def test_two_runs_are_byte_identical(self):
        specs = [spec(dropout=0.05, straggler=0.1, byzantine=0.1, max_norm=50.0)]
        a, _ = run_harness(specs)
        b, _ = run_harness(specs)
        assert report_bytes(a) == report_bytes(b)

    def test_seed_changes_the_report(self):
        a, _ = run_harness([spec()])
        b, _ = run_harness([spec(seed=12)])
        assert a["jobs"][0]["weights_sha256"] != b["jobs"][0]["weights_sha256"]

    def test_multi_tenant_concurrent_jobs(self):
        specs = [
            spec(tenant="t0", job_id="a", seed=1),
            spec(tenant="t1", job_id="b", seed=2),
            spec(tenant="t1", job_id="c", seed=2),
        ]
        report, finished = run_harness(specs)
        assert finished
        by_id = {job["job_id"]: job for job in report["jobs"]}
        assert all(job["commits"] == 3 for job in by_id.values())
        # same spec + same seed → same model, even interleaved with others
        assert by_id["b"]["weights_sha256"] == by_id["c"]["weights_sha256"]
        assert by_id["a"]["weights_sha256"] != by_id["b"]["weights_sha256"]

    def test_workers_do_not_change_the_committed_bytes(self):
        specs = [spec(shards=4)]
        a, _ = run_harness(specs, workers=0)
        b, _ = run_harness(specs, workers=2)
        assert a["jobs"][0]["weights_sha256"] == b["jobs"][0]["weights_sha256"]
        assert a["jobs"][0]["latency_p99_s"] == b["jobs"][0]["latency_p99_s"]


class TestCompression:
    def test_ratio_one_f64_commits_identical_weights(self):
        dense, _ = run_harness([spec()])
        sparse, _ = run_harness([spec(ratio=1.0, encoding="f64")])
        assert (
            dense["jobs"][0]["weights_sha256"]
            == sparse["jobs"][0]["weights_sha256"]
        )

    def test_topk_f32_cuts_uplink_bytes_4x(self):
        dense, _ = run_harness([spec()])
        compressed, _ = run_harness([spec(ratio=0.125, encoding="f32")])
        assert (
            dense["jobs"][0]["bytes_up_per_client"]
            >= 4.0 * compressed["jobs"][0]["bytes_up_per_client"]
        )
        # compression changes the bits (f32 quantization) but still commits
        assert compressed["jobs"][0]["commits"] == 3

    def test_latency_and_bytes_are_reported(self):
        report, _ = run_harness([spec()])
        job = report["jobs"][0]
        assert job["latency_p50_s"] > 0
        assert job["latency_p99_s"] >= job["latency_p50_s"]
        assert job["bytes_up"] > 0 and job["bytes_down"] > 0
        assert job["aggregator_peak_bytes"] > 0


class TestFaults:
    def test_dropouts_are_counted_not_fatal(self):
        report, finished = run_harness([spec(dropout=0.2)])
        assert finished
        assert report["jobs"][0]["drops"] > 0
        assert report["jobs"][0]["commits"] == 3

    def test_admission_rejects_byzantine_updates(self):
        report, _ = run_harness(
            [spec(byzantine=0.3, attack="scale", attack_strength=100.0, max_norm=5.0)]
        )
        job = report["jobs"][0]
        assert job["rejects"].get("admission", 0) > 0
        assert job["commits"] == 3


class TestKillResume:
    def test_in_process_kill_resume_is_bitwise_identical(self, tmp_path):
        specs = [spec(dropout=0.05, straggler=0.1)]
        uninterrupted, _ = run_harness(specs)

        storage = storage_for(tmp_path)
        partial, finished = run_harness(specs, storage=storage, max_events=15)
        assert not finished
        resumed, finished = run_harness(specs, storage=storage, resume=True)
        assert finished
        assert report_bytes(resumed) == report_bytes(uninterrupted)

    def test_resume_at_every_cut_point_matches(self, tmp_path):
        # the strong form: whatever event the process dies on, the resumed
        # run finishes with byte-identical output
        specs = [spec(clients=30, commits=2, buffer_size=4, concurrency=8)]
        uninterrupted, _ = run_harness(specs)
        for cut in (1, 7, 19):
            storage = storage_for(tmp_path / str(cut) if False else tmp_path)
            _, finished = run_harness(specs, storage=storage, max_events=cut)
            if finished:
                continue
            resumed, _ = run_harness(specs, storage=storage, resume=True)
            assert report_bytes(resumed) == report_bytes(uninterrupted), cut

    def test_checkpoint_every_n_still_resumes_identically(self, tmp_path):
        specs = [spec()]
        uninterrupted, _ = run_harness(specs)
        storage = storage_for(tmp_path)
        _, finished = run_harness(
            specs, storage=storage, max_events=20, checkpoint_every=5
        )
        assert not finished
        resumed, _ = run_harness(
            specs, storage=storage, resume=True, checkpoint_every=5
        )
        assert report_bytes(resumed) == report_bytes(uninterrupted)


class TestBackpressure:
    def test_tight_queue_sheds_but_completes(self):
        report, finished = run_harness(
            [spec(concurrency=32)], quota=TenantQuota(max_queue_depth=2)
        )
        assert finished
        assert report["jobs"][0]["commits"] == 3
