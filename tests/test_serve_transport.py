"""Transport layer: chaos channel, dedup ledger, breaker, backoff unity."""

import numpy as np
import pytest

from repro import obs
from repro.fl.config import BufferConfig
from repro.fl.resilience import RetryPolicy, collect_with_retries
from repro.fl import SequentialRoundExecutor
from repro.nn import mlp
from repro.obs import VirtualClock
from repro.serve import (
    BreakerConfig,
    BreakerState,
    ChaosChannel,
    ChaosConfig,
    ClientUpdateMsg,
    Coordinator,
    Encoding,
    FrameError,
    TenantBreaker,
    TenantQuota,
    WireVector,
    decode_frame,
    encode_frame,
)
from repro.serve.loadgen import LoadSpec, ServeHarness
from repro.sim.events import EventLoop

pytestmark = pytest.mark.serve


@pytest.fixture
def fresh_obs():
    with obs.fresh(clock=VirtualClock()) as ctx:
        yield ctx


@pytest.fixture
def weights():
    return mlp(num_classes=4, input_shape=(6,), hidden=(8, 5), seed=0).get_weights()


def chaos_frame(job, seq, *, base_version=None, scale=0.01):
    """A deterministic v2 uplink frame carrying transport seq ``seq``."""
    base_version = job.version if base_version is None else base_version
    delta = scale * np.random.default_rng((4321, seq)).standard_normal(job.size)
    message = ClientUpdateMsg(
        job.job_id, seq % 10, seq, base_version, 32, WireVector.dense(delta)
    )
    return encode_frame(message, dispatch=seq)


def drain_channel(config, payloads, *, seed=0, stream=1, attempt=0):
    """Push ``payloads`` through one channel, drain the loop, and return
    the delivered payloads plus the channel itself."""
    loop = EventLoop(VirtualClock())
    delivered = []
    channel = ChaosChannel(
        config, seed=seed, stream=stream, loop=loop, deliver=delivered.append
    )
    for key, data in enumerate(payloads):
        channel.send(data, key=key, attempt=attempt, delay=0.01)
    while loop.step():
        pass
    return delivered, channel


class TestChaosConfig:
    def test_uniform_splits_rate_evenly(self):
        config = ChaosConfig.uniform(0.12)
        for kind in ("drop", "duplicate", "reorder", "corrupt", "truncate", "replay"):
            assert getattr(config, kind) == pytest.approx(0.02)
        assert config.total == pytest.approx(0.12)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(drop=-0.1)
        with pytest.raises(ValueError):
            ChaosConfig(drop=0.6, corrupt=0.6)
        with pytest.raises(ValueError):
            ChaosConfig(reorder_window=0.0)
        with pytest.raises(ValueError):
            ChaosConfig.uniform(1.5)


class TestChaosChannel:
    def test_clean_channel_delivers_exactly_once(self, fresh_obs):
        payloads = [bytes([i]) * 40 for i in range(20)]
        delivered, channel = drain_channel(ChaosConfig(), payloads)
        assert delivered == payloads
        assert channel.counters["sends"] == 20
        assert channel.counters["copies"] == 20
        assert channel.counters["deliveries"] == 20
        assert channel.counters["dup_clean"] == 0

    def test_all_drop_delivers_nothing_but_charges(self, fresh_obs):
        charged = []
        loop = EventLoop(VirtualClock())
        channel = ChaosChannel(
            ChaosConfig(drop=1.0),
            seed=0,
            stream=1,
            loop=loop,
            deliver=lambda _: pytest.fail("dropped frame delivered"),
            charge=charged.append,
        )
        channel.send(b"x" * 64, key=0, attempt=0, delay=0.0)
        while loop.step():
            pass
        assert channel.counters["drops"] == 1
        assert channel.counters["deliveries"] == 0
        assert charged == [64]  # dropped bytes still burned uplink

    def test_all_duplicate_delivers_twice_and_counts_dup_clean(self, fresh_obs):
        payloads = [bytes([i]) * 16 for i in range(10)]
        delivered, channel = drain_channel(ChaosConfig(duplicate=1.0), payloads)
        assert len(delivered) == 20
        assert channel.counters["duplicates"] == 10
        assert channel.counters["dup_clean"] == 10
        assert channel.counters["copies"] == 20

    def test_all_replay_lands_a_stale_copy_after_the_window(self, fresh_obs):
        loop = EventLoop(VirtualClock())
        arrivals = []
        channel = ChaosChannel(
            ChaosConfig(replay=1.0, reorder_window=1.0),
            seed=0,
            stream=1,
            loop=loop,
            deliver=lambda data: arrivals.append((loop.now, data)),
        )
        channel.send(b"frame", key=0, attempt=0, delay=0.0)
        while loop.step():
            pass
        assert len(arrivals) == 2
        assert arrivals[1][0] - arrivals[0][0] >= 1.0  # beyond the window
        assert channel.counters["replays"] == 1
        assert channel.counters["dup_clean"] == 1

    def test_corruption_always_caught_by_decoder(self, fresh_obs, weights):
        coordinator = Coordinator()
        job = coordinator.create_job("t0", "j0", weights)
        payloads = [chaos_frame(job, seq) for seq in range(30)]
        delivered, channel = drain_channel(ChaosConfig(corrupt=1.0), payloads)
        assert channel.counters["corruptions"] == 30
        assert len(delivered) == 30
        for damaged in delivered:
            with pytest.raises(FrameError):
                decode_frame(damaged)

    def test_truncation_shortens_the_payload(self, fresh_obs):
        payloads = [b"q" * 100]
        delivered, channel = drain_channel(ChaosConfig(truncate=1.0), payloads)
        assert channel.counters["truncations"] == 1
        assert len(delivered) == 1
        assert len(delivered[0]) < 100

    def test_same_seed_same_fates(self, fresh_obs):
        payloads = [bytes([i % 251]) * 50 for i in range(120)]
        config = ChaosConfig.uniform(0.5)
        a, chan_a = drain_channel(config, payloads, seed=7)
        b, chan_b = drain_channel(config, payloads, seed=7)
        assert a == b
        assert chan_a.counters == chan_b.counters
        c, chan_c = drain_channel(config, payloads, seed=8)
        assert chan_c.counters != chan_a.counters

    def test_retransmit_attempt_draws_fresh_fate(self, fresh_obs):
        # key 0 attempt 0 drops under this seed/config; a later attempt of
        # the same key draws from a different stream and can get through.
        config = ChaosConfig.uniform(0.9)
        loop = EventLoop(VirtualClock())
        delivered = []
        channel = ChaosChannel(
            config, seed=3, stream=1, loop=loop, deliver=delivered.append
        )
        fates = set()
        for attempt in range(12):
            before = dict(channel.counters)
            channel.send(b"z" * 30, key=0, attempt=attempt, delay=0.0)
            after = channel.counters
            fates.add(
                tuple(k for k in after if after[k] != before.get(k, 0) and k
                      not in ("sends", "copies", "deliveries", "dup_clean"))
            )
        assert len(fates) > 1  # attempts are not fate-locked

    def test_checkpoint_restore_mid_flight_is_identical(self, fresh_obs):
        config = ChaosConfig.uniform(0.4)
        payloads = [bytes([i]) * 33 for i in range(40)]

        # Uninterrupted reference run.
        reference, _ = drain_channel(config, payloads, seed=11)

        # Run again, snapshot with deliveries still pending, then restore
        # onto a fresh loop/channel and drain.
        loop = EventLoop(VirtualClock())
        first = []
        channel = ChaosChannel(
            config, seed=11, stream=1, loop=loop, deliver=first.append
        )
        for key, data in enumerate(payloads):
            channel.send(data, key=key, attempt=0, delay=0.01)
        for _ in range(15):
            loop.step()
        state = channel.state_dict()
        assert state["pending"]  # something really was in flight

        clock = VirtualClock()
        clock.advance_to(loop.now)
        loop2 = EventLoop(clock)
        second = []
        resumed = ChaosChannel(
            config, seed=11, stream=1, loop=loop2, deliver=second.append
        )
        resumed.load_state(state)
        resumed.reschedule()
        while loop2.step():
            pass
        assert first + second == reference


class TestTenantBreaker:
    def config(self, **kwargs):
        base = dict(error_budget=2, window=10.0, cooldown=5.0, probes=2)
        base.update(kwargs)
        return BreakerConfig(**base)

    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(error_budget=0)
        with pytest.raises(ValueError):
            BreakerConfig(window=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(probes=0)

    def test_trips_when_budget_exceeded(self):
        breaker = TenantBreaker(self.config())
        assert not breaker.record_error(1.0)
        assert not breaker.record_error(1.1)
        assert breaker.record_error(1.2)  # third error > budget of 2
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        assert not breaker.allow(2.0)

    def test_window_slides_old_errors_out(self):
        breaker = TenantBreaker(self.config())
        breaker.record_error(0.0)
        breaker.record_error(0.1)
        # 10s later the early errors have aged out of the window.
        assert not breaker.record_error(11.0)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probes_close(self):
        breaker = TenantBreaker(self.config())
        for t in (0.0, 0.1, 0.2):
            breaker.record_error(t)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(4.0)  # still cooling down
        assert breaker.allow(5.5)  # cooldown elapsed -> half-open probe
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_ok(5.6)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_ok(5.7)
        assert breaker.state is BreakerState.CLOSED

    def test_error_during_half_open_retrips(self):
        breaker = TenantBreaker(self.config())
        for t in (0.0, 0.1, 0.2):
            breaker.record_error(t)
        assert breaker.allow(5.5)
        assert breaker.record_error(5.6)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2

    def test_state_round_trip(self):
        breaker = TenantBreaker(self.config())
        for t in (0.0, 0.1, 0.2):
            breaker.record_error(t)
        clone = TenantBreaker(self.config())
        clone.load_state(breaker.state_dict())
        assert clone.state is breaker.state
        assert clone.trips == breaker.trips
        assert clone.state_dict() == breaker.state_dict()


class TestIngestLedger:
    def test_in_order_frames_advance_the_cursor(self, fresh_obs, weights):
        coordinator = Coordinator()
        job = coordinator.create_job(
            "t0", "j0", weights, buffer=BufferConfig(size=64)
        )
        for seq in range(5):
            outcome = coordinator.ingest(chaos_frame(job, seq))
            assert outcome.status == "accepted"
            assert outcome.ack.status == "accepted"
            assert outcome.processed == ((seq, 0),)
        assert job.cursor == 5
        assert job.folds == 5

    def test_out_of_order_frames_stash_then_drain_in_seq_order(
        self, fresh_obs, weights
    ):
        coordinator = Coordinator()
        job = coordinator.create_job(
            "t0", "j0", weights, buffer=BufferConfig(size=64)
        )
        frames = {seq: chaos_frame(job, seq) for seq in range(4)}
        for seq in (2, 1, 3):
            outcome = coordinator.ingest(frames[seq])
            assert outcome.status == "accepted"
            assert outcome.processed == ()  # gap at seq 0 blocks the drain
        assert job.cursor == 0 and len(job.stash) == 3
        outcome = coordinator.ingest(frames[0])
        assert [seq for seq, _ in outcome.processed] == [0, 1, 2, 3]
        assert job.cursor == 4 and not job.stash

    def test_duplicates_hit_the_ledger_everywhere(self, fresh_obs, weights):
        coordinator = Coordinator()
        job = coordinator.create_job(
            "t0", "j0", weights, buffer=BufferConfig(size=64)
        )
        frames = {seq: chaos_frame(job, seq) for seq in range(3)}
        coordinator.ingest(frames[0])
        coordinator.ingest(frames[2])  # stashed
        # Below the cursor, in the stash: both are duplicates.
        for seq in (0, 2):
            outcome = coordinator.ingest(frames[seq])
            assert outcome.status == "duplicate"
            assert outcome.ack.status == "duplicate"
        assert job.transport["dedup_hits"] == 2
        assert job.folds == 1  # nothing folded twice

    def test_corrupt_frame_counted_and_unacked(self, fresh_obs, weights):
        coordinator = Coordinator()
        job = coordinator.create_job("t0", "j0", weights)
        frame = bytearray(chaos_frame(job, 0))
        frame[len(frame) // 2] ^= 0x10
        outcome = coordinator.ingest(bytes(frame), job_hint="j0")
        assert outcome.status == "corrupt"
        assert outcome.ack is None
        assert job.transport["corrupt"] == 1
        assert job.folds == 0

    def test_v1_frame_without_dispatch_is_rejected(self, fresh_obs, weights):
        coordinator = Coordinator()
        job = coordinator.create_job("t0", "j0", weights)
        delta = np.zeros(job.size)
        frame = encode_frame(
            ClientUpdateMsg("j0", 0, 0, 0, 32, WireVector.dense(delta))
        )
        assert coordinator.ingest(frame, job_hint="j0").status == "corrupt"

    def test_backpressure_refuses_without_ack(self, fresh_obs, weights):
        coordinator = Coordinator(quota=TenantQuota(max_queue_depth=2))
        job = coordinator.create_job(
            "t0", "j0", weights, buffer=BufferConfig(size=64)
        )
        # seqs 1..3 all stash (seq 0 missing); depth 2 refuses the third.
        assert coordinator.ingest(chaos_frame(job, 1)).status == "accepted"
        assert coordinator.ingest(chaos_frame(job, 2)).status == "accepted"
        refused = coordinator.ingest(chaos_frame(job, 3))
        assert refused.status == "refused:backpressure"
        assert refused.ack is None  # silence -> client retransmits later
        assert job.transport["refused"] == 1

    def test_breaker_sheds_after_corruption_storm(self, fresh_obs, weights):
        coordinator = Coordinator(
            breaker=BreakerConfig(error_budget=1, window=30.0, cooldown=5.0)
        )
        job = coordinator.create_job("t0", "j0", weights)
        bad = bytearray(chaos_frame(job, 0))
        bad[-1] ^= 0x01
        assert coordinator.ingest(bytes(bad), now=1.0, job_hint="j0").status == "corrupt"
        assert coordinator.ingest(bytes(bad), now=1.1, job_hint="j0").status == "corrupt"
        assert job.transport["breaker_trips"] == 1
        # Clean frame while OPEN is shed without an ack...
        shed = coordinator.ingest(chaos_frame(job, 0), now=2.0)
        assert shed.status == "shed"
        assert shed.ack is None
        assert job.transport["shed"] == 1
        # ...and gets through once the cooldown elapses (half-open probe).
        ok = coordinator.ingest(chaos_frame(job, 0), now=7.0)
        assert ok.status == "accepted"
        assert job.folds == 1

    def test_ledger_survives_coordinator_state_round_trip(
        self, fresh_obs, weights
    ):
        coordinator = Coordinator(breaker=BreakerConfig(error_budget=1))
        job = coordinator.create_job(
            "t0", "j0", weights, buffer=BufferConfig(size=64)
        )
        coordinator.ingest(chaos_frame(job, 0))
        coordinator.ingest(chaos_frame(job, 2))  # stashed out of order
        bad = bytearray(chaos_frame(job, 1))
        bad[-1] ^= 0x01
        coordinator.ingest(bytes(bad), now=1.0, job_hint="j0")

        clone = Coordinator(breaker=BreakerConfig(error_budget=1))
        clone.load_state(coordinator.state_dict())
        restored = clone.jobs["j0"]
        assert restored.cursor == 1
        assert set(restored.stash) == {2}
        assert restored.transport == job.transport
        assert clone.breakers["t0"].state_dict() == (
            coordinator.breakers["t0"].state_dict()
        )
        # Duplicate of seq 0 still dedups after the restore.
        assert clone.ingest(chaos_frame(job, 0)).status == "duplicate"


class TestBackoffUnity:
    """One backoff schedule across fl.resilience and serve retransmission."""

    def test_backoff_for_doubles_from_base(self):
        policy = RetryPolicy(max_retries=4, backoff_seconds=0.25)
        assert [policy.backoff_for(a) for a in range(1, 6)] == [
            0.25, 0.5, 1.0, 2.0, 4.0
        ]
        with pytest.raises(ValueError):
            policy.backoff_for(0)

    def test_bounded_backoff_plateaus_at_the_cap(self):
        policy = RetryPolicy(max_retries=3, backoff_seconds=0.1)
        unbounded = [policy.backoff_for(a) for a in range(1, 5)]
        bounded = [policy.bounded_backoff_for(a) for a in range(1, 9)]
        assert bounded[:4] == unbounded
        assert bounded[4:] == [unbounded[-1]] * 4  # capped, never runaway

    def test_retry_and_retransmit_paths_share_the_schedule(self, fresh_obs):
        """collect_with_retries' accounted backoff and the load generator's
        retransmit timers must follow the identical delay schedule."""
        policy = RetryPolicy(max_retries=3, backoff_seconds=0.25)

        attempts = {"n": 0}

        def always_fails(_):
            attempts["n"] += 1
            raise RuntimeError("down")

        collect_with_retries(
            SequentialRoundExecutor(), always_fails, ["x"], policy
        )
        accounted = fresh_obs.registry.counter(
            "fl.retry.backoff_seconds"
        ).total()
        retry_schedule = [policy.backoff_for(a) for a in range(1, 4)]
        assert accounted == pytest.approx(sum(retry_schedule))

        spec = LoadSpec(
            tenant="t0",
            job_id="j0",
            clients=4,
            commits=1,
            buffer_size=4,
            concurrency=2,
            chaos=True,
            retry_backoff=0.25,
            retry_cap=3,
            retransmit_timeout=2.0,
        )
        with ServeHarness([spec]) as harness:
            generator = harness.generators[0]
            transmit_schedule = [
                generator.policy.bounded_backoff_for(a) for a in range(1, 4)
            ]
            # Identical schedule while attempts remain within budget; the
            # transport side then plateaus instead of backing off forever.
            assert transmit_schedule == retry_schedule
            assert generator.policy.bounded_backoff_for(9) == policy.backoff_for(4)
