"""Wire-protocol suite: canonical frames, validation, byte-exact round trips."""

import struct
import zlib

import numpy as np
import pytest

from repro.fl.compression import (
    INDEX_WIRE_BYTES,
    VALUE_WIRE_BYTES,
    SparseUpdate,
    TopKCompressor,
)
from repro.serve.wire import (
    FLAG_SPARSE,
    HEADER_BYTES,
    HEADER_BYTES_V2,
    MAGIC,
    WIRE_VERSION,
    WIRE_VERSION_DISPATCH,
    AckMsg,
    ClientUpdateMsg,
    Encoding,
    FrameError,
    ModelDownloadMsg,
    MsgType,
    ShardPartialMsg,
    WireVector,
    decode_frame,
    encode_frame,
    iter_frames,
    verify_frame,
)

pytestmark = pytest.mark.serve


def _vector(rng, n=32):
    return rng.standard_normal(n)


# --- framing basics ---------------------------------------------------------


class TestFraming:
    def test_header_layout(self, rng):
        frame = encode_frame(
            ModelDownloadMsg("job", 3, WireVector.dense(_vector(rng)))
        )
        magic, version, msg_type, encoding, flags, body_len, crc = struct.unpack_from(
            ">4sBBBBII", frame
        )
        assert magic == MAGIC
        assert version == WIRE_VERSION
        assert msg_type == MsgType.MODEL_DOWNLOAD
        assert encoding == Encoding.F64
        assert flags == 0
        assert body_len == len(frame) - HEADER_BYTES
        # CRC covers the header prefix plus the body (the CRC field is
        # the only uncovered span), so single-bit header damage is loud.
        assert (
            crc
            == zlib.crc32(frame[HEADER_BYTES:], zlib.crc32(frame[:12]))
            & 0xFFFFFFFF
        )

    def test_sparse_flag_set(self, rng):
        sparse = WireVector.sparse(64, np.arange(4), rng.standard_normal(4))
        frame = encode_frame(ClientUpdateMsg("j", 1, 2, 0, 17, sparse))
        assert frame[7] & FLAG_SPARSE

    def test_iter_frames_concatenated(self, rng):
        frames = b"".join(
            encode_frame(ModelDownloadMsg("j", v, WireVector.dense(_vector(rng))))
            for v in range(3)
        )
        versions = [message.version for message in iter_frames(frames)]
        assert versions == [0, 1, 2]

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda f: b"XXXX" + f[4:], "magic"),
            (lambda f: f[:4] + bytes([99]) + f[5:], "version"),
            (lambda f: f[:5] + bytes([200]) + f[6:], "not a valid MsgType"),
            (lambda f: f[:6] + bytes([200]) + f[7:], "not a valid Encoding"),
            (lambda f: f[:7] + bytes([0x80]) + f[8:], "flags"),
            (lambda f: f[:-1], "truncated"),
            (lambda f: f[:20] + bytes([f[20] ^ 0xFF]) + f[21:], "CRC"),
            (lambda f: f[:HEADER_BYTES], "truncated"),
        ],
    )
    def test_rejects_damaged_frames(self, rng, mutate, match):
        frame = encode_frame(
            ModelDownloadMsg("job", 1, WireVector.dense(_vector(rng)))
        )
        with pytest.raises(FrameError, match=match):
            decode_frame(mutate(frame))

    def test_rejects_trailing_body_bytes(self, rng):
        frame = bytearray(
            encode_frame(ModelDownloadMsg("job", 1, WireVector.dense(_vector(rng))))
        )
        body = bytes(frame[HEADER_BYTES:]) + b"\x00"
        prefix = struct.pack(
            ">4sBBBBI",
            MAGIC,
            WIRE_VERSION,
            int(MsgType.MODEL_DOWNLOAD),
            int(Encoding.F64),
            0,
            len(body),
        )
        crc = zlib.crc32(body, zlib.crc32(prefix)) & 0xFFFFFFFF
        with pytest.raises(FrameError, match="trailing"):
            decode_frame(prefix + struct.pack(">I", crc) + body)


# --- message round trips ----------------------------------------------------


class TestRoundTrips:
    @pytest.mark.parametrize(
        "encoding", [Encoding.F64, Encoding.F32, Encoding.F16, Encoding.Q8]
    )
    def test_dense_reencode_is_identity(self, rng, encoding):
        message = ModelDownloadMsg("job-0", 7, WireVector.dense(_vector(rng), encoding))
        frame = encode_frame(message)
        decoded, end = decode_frame(frame)
        assert end == len(frame)
        assert encode_frame(decoded) == frame
        assert decoded.job_id == "job-0" and decoded.version == 7

    def test_f64_dense_is_lossless(self, rng):
        vector = _vector(rng)
        decoded, _ = decode_frame(
            encode_frame(ModelDownloadMsg("j", 0, WireVector.dense(vector)))
        )
        assert np.array_equal(decoded.vector.flat64(), vector)

    @pytest.mark.parametrize(
        "encoding", [Encoding.F64, Encoding.F32, Encoding.F16, Encoding.Q8]
    )
    def test_sparse_client_update_round_trip(self, rng, encoding):
        indices = np.sort(rng.choice(100, size=9, replace=False))
        message = ClientUpdateMsg(
            "tenant-a/job",
            client=12,
            dispatch=3456,
            base_version=2,
            num_samples=64,
            delta=WireVector.sparse(100, indices, rng.standard_normal(9), encoding),
        )
        frame = encode_frame(message)
        decoded, _ = decode_frame(frame)
        assert encode_frame(decoded) == frame
        assert decoded.dispatch == 3456 and decoded.base_version == 2
        assert np.array_equal(decoded.delta.indices, indices.astype("<u4"))
        assert decoded.delta.flat64().shape == (100,)

    def test_sealed_passthrough(self):
        blob = b"\x00\x01opaque sealed update\xff"
        message = ClientUpdateMsg("j", 1, 2, 0, 8, WireVector.sealed(blob, size=50))
        decoded, _ = decode_frame(encode_frame(message))
        assert decoded.delta.is_sealed
        assert decoded.delta.blob == blob
        assert encode_frame(decoded) == encode_frame(message)
        with pytest.raises(FrameError, match="opaque"):
            decoded.delta.flat64()

    def test_shard_partial_round_trip(self, rng):
        components = tuple(rng.standard_normal(5) for _ in range(3))
        message = ShardPartialMsg("j", 2, folds=9, total_samples=412, components=components)
        frame = encode_frame(message)
        decoded, _ = decode_frame(frame)
        assert encode_frame(decoded) == frame
        assert decoded.shard_id == 2 and decoded.total_samples == 412
        for got, expected in zip(decoded.components, components):
            assert np.array_equal(got, expected)

    def test_q8_decode_is_pure_function_of_frame(self, rng):
        vector = _vector(rng)
        frame = encode_frame(
            ModelDownloadMsg("j", 0, WireVector.dense(vector, Encoding.Q8))
        )
        a, _ = decode_frame(frame)
        b, _ = decode_frame(frame)
        assert np.array_equal(a.vector.flat64(), b.vector.flat64())
        # quantization error is bounded by half a level
        levels = (vector.max() - vector.min()) / 255.0
        assert np.abs(a.vector.flat64() - vector).max() <= levels / 2 + 1e-12


# --- v2 dispatch frames and acks -------------------------------------------


class TestDispatchFrames:
    def test_v2_header_carries_dispatch(self, rng):
        message = ClientUpdateMsg("j", 1, 77, 0, 8, WireVector.dense(_vector(rng)))
        frame = encode_frame(message, dispatch=123456789)
        assert frame[4] == WIRE_VERSION_DISPATCH
        header = verify_frame(frame)
        assert header.dispatch == 123456789
        assert header.header_bytes == HEADER_BYTES_V2
        decoded, end = decode_frame(frame)
        assert end == len(frame)
        assert encode_frame(decoded, dispatch=123456789) == frame

    def test_v1_header_has_no_dispatch(self, rng):
        frame = encode_frame(
            ModelDownloadMsg("j", 0, WireVector.dense(_vector(rng)))
        )
        header = verify_frame(frame)
        assert header.dispatch is None
        assert header.header_bytes == HEADER_BYTES

    def test_v1_and_v2_bodies_are_identical(self, rng):
        message = ClientUpdateMsg("j", 1, 2, 0, 8, WireVector.dense(_vector(rng)))
        v1 = encode_frame(message)
        v2 = encode_frame(message, dispatch=7)
        assert len(v2) == len(v1) + (HEADER_BYTES_V2 - HEADER_BYTES)
        assert v2[HEADER_BYTES_V2:] == v1[HEADER_BYTES:]

    def test_same_message_different_dispatch_differs(self, rng):
        message = ClientUpdateMsg("j", 1, 2, 0, 8, WireVector.dense(_vector(rng)))
        assert encode_frame(message, dispatch=1) != encode_frame(message, dispatch=2)

    def test_dispatch_extension_is_crc_covered(self, rng):
        frame = bytearray(
            encode_frame(
                ClientUpdateMsg("j", 1, 2, 0, 8, WireVector.dense(_vector(rng))),
                dispatch=5,
            )
        )
        frame[HEADER_BYTES] ^= 0x01  # first byte of the dispatch extension
        with pytest.raises(FrameError, match="CRC"):
            decode_frame(bytes(frame))

    def test_negative_dispatch_rejected(self, rng):
        message = ModelDownloadMsg("j", 0, WireVector.dense(_vector(rng)))
        with pytest.raises(FrameError, match="dispatch"):
            encode_frame(message, dispatch=-1)

    def test_ack_round_trip(self):
        for status in ("accepted", "duplicate", "rejected:done"):
            message = AckMsg("tenant-a/job", 4096, status)
            frame = encode_frame(message)
            decoded, end = decode_frame(frame)
            assert end == len(frame)
            assert decoded == message
            assert decoded.msg_type == MsgType.ACK

    def test_ack_v2_round_trip(self):
        message = AckMsg("j", 9, "accepted")
        frame = encode_frame(message, dispatch=9)
        decoded, _ = decode_frame(frame)
        assert decoded == message
        assert verify_frame(frame).dispatch == 9

    def test_verify_frame_matches_decode_on_concatenation(self, rng):
        frames = [
            encode_frame(
                ClientUpdateMsg("j", i, i, 0, 8, WireVector.dense(_vector(rng))),
                dispatch=i,
            )
            for i in range(3)
        ]
        blob = b"".join(frames)
        at = 0
        seen = []
        while at < len(blob):
            header = verify_frame(blob, at)
            seen.append(header.dispatch)
            at = header.end
        assert seen == [0, 1, 2]


# --- byte accounting (satellite: SparseUpdate.wire_bytes linkage) ----------


class TestByteAccounting:
    def test_wire_bytes_constants(self):
        update = SparseUpdate(100, np.arange(7), np.ones(7))
        assert update.wire_bytes() == 7 * (INDEX_WIRE_BYTES + VALUE_WIRE_BYTES)
        assert INDEX_WIRE_BYTES == 4 and VALUE_WIRE_BYTES == 4

    def test_sparse_frame_charges_what_wire_bytes_promises(self, rng):
        update = TopKCompressor(0.1, error_feedback=False).compress(
            rng.standard_normal(200)
        )
        vector = WireVector.from_sparse_update(update)  # F32 values
        # the index+value payload portion is exactly update.wire_bytes()
        assert vector.payload_bytes() == 4 + 4 + update.wire_bytes()

    def test_payload_bytes_matches_encoded_body(self, rng):
        for vector in (
            WireVector.dense(_vector(rng), Encoding.F16),
            WireVector.dense(_vector(rng), Encoding.Q8),
            WireVector.sparse(64, np.arange(5), rng.standard_normal(5)),
            WireVector.sealed(b"blob", size=9),
        ):
            message = ModelDownloadMsg("j", 0, vector)
            frame = encode_frame(message)
            body_len = len(frame) - HEADER_BYTES
            # body = job_id (2 + 1) + version (8) + vector payload
            assert body_len == 3 + 8 + vector.payload_bytes()


# --- hypothesis: canonical-bytes property ----------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


def _dense_message(seed, encoding, size):
    rng = np.random.default_rng(seed)
    return ModelDownloadMsg(
        f"job-{seed % 5}", seed % 11, WireVector.dense(rng.standard_normal(size), encoding)
    )


@pytest.mark.property
class TestWireProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        encoding=st.sampled_from(
            [Encoding.F64, Encoding.F32, Encoding.F16, Encoding.Q8]
        ),
        size=st.integers(1, 300),
    )
    def test_dense_encode_decode_encode_is_identity(self, seed, encoding, size):
        frame = encode_frame(_dense_message(seed, encoding, size))
        decoded, end = decode_frame(frame)
        assert end == len(frame)
        assert encode_frame(decoded) == frame

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        encoding=st.sampled_from(
            [Encoding.F64, Encoding.F32, Encoding.F16, Encoding.Q8]
        ),
        size=st.integers(1, 300),
        k=st.integers(1, 50),
    )
    def test_sparse_encode_decode_encode_is_identity(self, seed, encoding, size, k):
        rng = np.random.default_rng(seed)
        k = min(k, size)
        indices = np.sort(rng.choice(size, size=k, replace=False))
        message = ClientUpdateMsg(
            "j",
            seed % 1000,
            seed % 10**6,
            seed % 7,
            1 + seed % 128,
            WireVector.sparse(size, indices, rng.standard_normal(k), encoding),
        )
        frame = encode_frame(message)
        decoded, _ = decode_frame(frame)
        assert encode_frame(decoded) == frame
        assert np.array_equal(
            decoded.delta.flat64(), message.delta.flat64()
        )

    @settings(max_examples=40, deadline=None)
    @given(blob=st.binary(max_size=512), size=st.integers(0, 1000))
    def test_sealed_encode_decode_encode_is_identity(self, blob, size):
        frame = encode_frame(
            ClientUpdateMsg("j", 0, 0, 0, 1, WireVector.sealed(blob, size=size))
        )
        decoded, _ = decode_frame(frame)
        assert encode_frame(decoded) == frame
        assert decoded.delta.blob == blob
