"""Fuzz suite for the wire decoder: hostile bytes only ever FrameError.

Two properties the chaos transport leans on:

* ``decode_frame`` over arbitrary byte soup raises :class:`FrameError`
  (never any other exception, never a silent success on garbage);
* every single-bit flip of a valid frame — v1 or v2, any message type,
  any encoding — is rejected.  The frame CRC covers every byte except
  the CRC field itself, and flipping a CRC bit breaks the match too, so
  CRC-32 catches 100% of single-bit damage, not merely "most".
"""

import numpy as np
import pytest

from repro.serve.wire import (
    AckMsg,
    ClientUpdateMsg,
    Encoding,
    FrameError,
    ModelDownloadMsg,
    ShardPartialMsg,
    WireVector,
    decode_frame,
    encode_frame,
)

pytestmark = pytest.mark.serve

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


def _valid_frame(seed: int, kind: int, dispatch: bool) -> bytes:
    rng = np.random.default_rng(seed)
    vector = WireVector.dense(
        rng.standard_normal(1 + seed % 40),
        [Encoding.F64, Encoding.F32, Encoding.F16, Encoding.Q8][seed % 4],
    )
    if kind == 0:
        message = ModelDownloadMsg(f"job-{seed % 3}", seed % 9, vector)
    elif kind == 1:
        sparse = WireVector.sparse(
            50, np.sort(rng.choice(50, size=5, replace=False)), rng.standard_normal(5)
        )
        message = ClientUpdateMsg("j", seed % 100, seed, seed % 4, 8, sparse)
    elif kind == 2:
        message = ShardPartialMsg(
            "j", seed % 4, folds=3, total_samples=99,
            components=(rng.standard_normal(4), rng.standard_normal(4)),
        )
    else:
        message = AckMsg("j", seed, ("accepted", "duplicate", "rejected:done")[seed % 3])
    return encode_frame(message, dispatch=seed if dispatch else None)


@pytest.mark.property
class TestDecodeNeverCrashes:
    @settings(max_examples=300, deadline=None)
    @given(data=st.binary(max_size=256))
    def test_random_bytes_raise_only_frame_error(self, data):
        with pytest.raises(FrameError):
            decode_frame(data)

    @settings(max_examples=200, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        kind=st.integers(0, 3),
        dispatch=st.booleans(),
        junk=st.binary(min_size=1, max_size=64),
        cut=st.integers(0, 10**6),
    )
    def test_mangled_valid_frames_raise_only_frame_error(
        self, seed, kind, dispatch, junk, cut
    ):
        frame = _valid_frame(seed, kind, dispatch)
        # truncation, junk splice, and prefix damage all stay FrameError
        for mangled in (
            frame[: cut % len(frame)],
            junk + frame,
            frame[: len(frame) // 2] + junk + frame[len(frame) // 2 :],
        ):
            try:
                decode_frame(mangled)
            except FrameError:
                pass

    @settings(max_examples=400, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        kind=st.integers(0, 3),
        dispatch=st.booleans(),
        bit=st.integers(0, 10**9),
    )
    def test_every_single_bit_flip_is_detected(self, seed, kind, dispatch, bit):
        frame = bytearray(_valid_frame(seed, kind, dispatch))
        position = bit % (len(frame) * 8)
        frame[position // 8] ^= 1 << (position % 8)
        with pytest.raises(FrameError):
            decode_frame(bytes(frame))


class TestExhaustiveSingleBitSweep:
    """Non-random twin of the property: every bit of one frame per shape."""

    @pytest.mark.parametrize("kind", [0, 1, 2, 3])
    @pytest.mark.parametrize("dispatch", [False, True])
    def test_all_bits(self, kind, dispatch):
        frame = _valid_frame(7, kind, dispatch)
        for position in range(len(frame) * 8):
            damaged = bytearray(frame)
            damaged[position // 8] ^= 1 << (position % 8)
            with pytest.raises(FrameError):
                decode_frame(bytes(damaged))
