"""End-to-end tests for the asynchronous (FedBuff-style) simulator mode.

Everything here rides the shared ``sim_runner`` / ``sim_factory`` /
``report_bytes`` / ``simulate_cli`` fixtures from ``conftest.py``.  The
claims: same-seed async runs are byte-identical (CLI and API), a
coordinator killed *mid-buffer* resumes bit-for-bit, stragglers produce
genuinely stale folds, and aggregator memory stays flat as the fleet
grows.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.sim import FaultRates, SimConfig
from repro.tee.storage import InMemoryBackend, SecureStorage

pytestmark = [getattr(pytest.mark, "async")]  # "async" is a keyword

SSK = b"\x07" * 32

ASYNC = dict(
    num_clients=60,
    rounds=6,
    seed=0,
    cohort=20,
    drift=0.3,
    update_scale=0.01,
    async_mode=True,
    buffer_size=10,
)
FAULTS = FaultRates(dropout=0.1, straggler=0.2)


class TestConfigGuards:
    def test_compile_is_rejected_in_async_mode(self):
        with pytest.raises(ValueError, match="compile"):
            SimConfig(num_clients=10, rounds=1, async_mode=True, compile=True)

    def test_step_round_is_rejected_in_async_mode(self, sim_factory):
        with sim_factory(**ASYNC) as sim:
            with pytest.raises(RuntimeError, match="async"):
                sim.step_round()

    def test_step_commit_requires_async_mode(self, sim_factory):
        with sim_factory(num_clients=10, rounds=1, seed=0) as sim:
            with pytest.raises(RuntimeError, match="async_mode"):
                sim.step_commit()


class TestDeterminism:
    def test_same_seed_byte_identical(self, sim_runner, report_bytes):
        # a short deadline so silent clients are *detected* (and counted)
        # within the run's virtual horizon
        settings = dict(ASYNC, deadline_seconds=0.5)
        reports = [
            sim_runner(rates=FAULTS, **settings) for _ in range(2)
        ]
        assert report_bytes(reports[0]) == report_bytes(reports[1])
        assert reports[0]["mode"] == "async"
        assert reports[0]["totals"]["commits"] == ASYNC["rounds"]
        # the faults actually bit — this is not an idle-fleet agreement
        assert reports[0]["totals"]["dropouts"] > 0

    def test_cli_async_byte_identical(self, simulate_cli):
        flags = ("--async", "--buffer-size", "8")
        first = simulate_cli("a.json", *flags)
        second = simulate_cli("b.json", *flags)
        assert first == second
        payload = json.loads(first)
        assert payload["mode"] == "async"
        assert payload["config"]["buffer_size"] == 8
        assert payload["totals"]["commits"] == 3

    def test_api_simulate_async_deterministic(self):
        kwargs = dict(
            clients=40,
            rounds=3,
            seed=9,
            dropout=0.2,
            async_mode=True,
            buffer_size=8,
        )
        a = api.simulate(**kwargs)
        b = api.simulate(**kwargs)
        assert a == b
        assert a["mode"] == "async"

    def test_staleness_weighting_changes_the_weights(self, sim_runner):
        constant = sim_runner(rates=FaultRates(straggler=0.3), **ASYNC)
        decayed = sim_runner(
            rates=FaultRates(straggler=0.3),
            **dict(ASYNC, staleness="polynomial", staleness_exponent=1.0),
        )
        # stale folds exist, so down-weighting them must move the model
        assert constant["totals"]["staleness_max"] >= 1
        assert constant["weights_sha256"] != decayed["weights_sha256"]


class TestStaleness:
    def test_stragglers_fold_in_stale_instead_of_dropping(self, sim_runner):
        report = sim_runner(rates=FaultRates(straggler=0.3), **ASYNC)
        totals = report["totals"]
        assert totals["stragglers"] > 0
        # the histogram has mass beyond bucket "0": late updates were
        # folded with staleness > 0, not discarded
        assert totals["staleness_max"] >= 1
        assert any(bucket != "0" for bucket in totals["staleness"])
        assert sum(totals["staleness"].values()) == totals["updates"]

    def test_injected_straggle_is_honoured(self, sim_factory):
        # A gentle slow-down and enough commits that the delayed arrival
        # still lands inside the run's virtual horizon.
        settings = dict(
            ASYNC, buffer_size=4, rounds=25, straggler_factor=3.0
        )
        with sim_factory(**settings) as sim:
            # dispatch index 0, whichever client the selector draws first
            for client in range(settings["num_clients"]):
                sim.fault_plan.inject(0, client, "straggle")
            report = sim.run()
        assert report["totals"]["stragglers"] == 1
        assert report["totals"]["staleness_max"] >= 1


class TestKillResume:
    def test_mid_buffer_resume_is_bit_for_bit(
        self, sim_runner, sim_factory, report_bytes
    ):
        settings = dict(ASYNC, rounds=5)
        uninterrupted = sim_runner(rates=FAULTS, **settings)

        storage = SecureStorage(InMemoryBackend(), ssk=SSK)
        with sim_factory(storage=storage, rates=FAULTS, **settings) as killed:
            killed.step_commit()
            killed.step_commit()
            # push into the *middle* of the third window, then die: the
            # open buffer, in-flight dispatches and version table must all
            # come back from the checkpoint
            while killed._buffer.pending < 5:
                assert killed.loop.step()
            assert killed.round == 2 and 0 < killed._buffer.pending < 10

        with sim_factory(storage=storage, rates=FAULTS, **settings) as revived:
            assert revived.resumed_from == 2
            assert revived._buffer.pending == 5
            resumed = revived.run()

        assert resumed.pop("resumed_from_round") == 2
        uninterrupted.pop("resumed_from_round")
        assert resumed["weights_sha256"] == uninterrupted["weights_sha256"]
        assert report_bytes(resumed) == report_bytes(uninterrupted)

    def test_commit_boundary_resume_is_bit_for_bit(
        self, sim_runner, sim_factory, report_bytes
    ):
        settings = dict(ASYNC, rounds=4)
        uninterrupted = sim_runner(rates=FAULTS, **settings)
        storage = SecureStorage(InMemoryBackend(), ssk=SSK)
        with sim_factory(storage=storage, rates=FAULTS, **settings) as killed:
            killed.step_commit()
        with sim_factory(storage=storage, rates=FAULTS, **settings) as revived:
            resumed = revived.run()
        assert resumed.pop("resumed_from_round") == 1
        uninterrupted.pop("resumed_from_round")
        assert report_bytes(resumed) == report_bytes(uninterrupted)


class TestFlatMemory:
    def test_aggregator_peak_is_independent_of_fleet_size(self, sim_runner):
        def peak(clients):
            report = sim_runner(
                num_clients=clients,
                rounds=3,
                seed=0,
                cohort=40,
                concurrency=30,
                async_mode=True,
                buffer_size=20,
            )
            assert report["totals"]["commits"] == 3
            return report["aggregator_peak_bytes"]

        small, large = peak(200), peak(2000)
        assert small > 0
        # exact accumulators: peak state is O(model size), not O(fleet)
        assert large <= 1.5 * small

    def test_report_keeps_sync_count_keys(self, sim_runner):
        report = sim_runner(rates=FAULTS, **ASYNC)
        for key in ("dropouts", "stragglers", "attacked", "quarantined"):
            assert key in report["totals"]
        for outcome in report["rounds"]:
            assert outcome["dead_shards"] == []
            assert outcome["buffer_size"] == ASYNC["buffer_size"]
