"""Batched/compiled simulator execution: byte-identity with the eager path."""

from __future__ import annotations

import json

import pytest

from repro.api import simulate
from repro.cli import main
from repro.sim import SimConfig


def _report_json(**kwargs) -> str:
    return json.dumps(simulate(**kwargs), sort_keys=True)


class TestConfigValidation:
    def test_client_batch_must_be_positive(self):
        with pytest.raises(ValueError, match="client_batch"):
            SimConfig(num_clients=4, rounds=1, client_batch=0)

    def test_client_batch_requires_compile(self):
        with pytest.raises(ValueError, match="requires compile"):
            SimConfig(num_clients=4, rounds=1, client_batch=8)

    def test_compiled_config_accepted(self):
        cfg = SimConfig(num_clients=4, rounds=1, compile=True, client_batch=8)
        assert cfg.compile and cfg.client_batch == 8

    def test_execution_knobs_stay_out_of_the_report(self):
        """compile/client_batch are execution knobs, not deployment
        semantics: the report's config block must not mention them, so
        compiled and eager reports stay byte-comparable."""
        report = simulate(clients=8, rounds=1, seed=0, compile=True)
        assert "compile" not in report["config"]
        assert "client_batch" not in report["config"]
        assert report["config"]["num_clients"] == 8


class TestByteIdentity:
    CASES = [
        dict(clients=48, rounds=2, seed=11, cohort=16),
        dict(
            clients=48,
            rounds=2,
            seed=12,
            cohort=16,
            byzantine=0.25,
            attack="gauss_noise",
            rule="median",
        ),
        dict(
            clients=64,
            rounds=2,
            seed=13,
            cohort=24,
            byzantine=0.2,
            attack="scale",
            max_norm=0.5,
            clip=True,
            shards=2,
            dropout=0.1,
            straggler=0.1,
        ),
    ]

    @pytest.mark.parametrize("case", range(len(CASES)))
    @pytest.mark.parametrize("batch", [1, 8, 64])
    def test_compiled_report_identical(self, case, batch):
        kwargs = self.CASES[case]
        eager = _report_json(**kwargs)
        compiled = _report_json(**kwargs, compile=True, client_batch=batch)
        assert eager == compiled

    def test_weights_sha_identical_with_metrics(self):
        kwargs = dict(clients=32, rounds=2, seed=3, cohort=12)
        eager = simulate(**kwargs, include_metrics=True)
        compiled = simulate(
            **kwargs, compile=True, client_batch=8, include_metrics=True
        )
        assert eager["weights_sha256"] == compiled["weights_sha256"]
        assert json.dumps(eager["metrics"], sort_keys=True) == json.dumps(
            compiled["metrics"], sort_keys=True
        )


class TestCli:
    ARGS = [
        "simulate",
        "--clients", "64",
        "--rounds", "2",
        "--seed", "5",
        "--dropout", "0.1",
        "--straggler", "0.1",
    ]

    def test_cli_output_byte_identical(self, tmp_path):
        eager = tmp_path / "eager.json"
        compiled = tmp_path / "compiled.json"
        assert main([*self.ARGS, "--out", str(eager)]) == 0
        assert main([
            *self.ARGS, "--compile", "--client-batch", "64",
            "--out", str(compiled),
        ]) == 0
        assert eager.read_bytes() == compiled.read_bytes()

    def test_compiled_checkpoint_resume_matches_eager(self, tmp_path):
        """A compiled run killed after 2 of 3 rounds and resumed (still
        compiled) ends with the same bytes as an uninterrupted eager run."""
        full = tmp_path / "full.json"
        assert main([
            "simulate", "--clients", "64", "--rounds", "3", "--seed", "9",
            "--out", str(full),
        ]) == 0
        state = tmp_path / "state"
        partial = tmp_path / "partial.json"
        assert main([
            "simulate", "--clients", "64", "--rounds", "2", "--seed", "9",
            "--compile", "--client-batch", "16",
            "--state-dir", str(state), "--out", str(partial),
        ]) == 0
        resumed = tmp_path / "resumed.json"
        assert main([
            "simulate", "--clients", "64", "--rounds", "3", "--seed", "9",
            "--compile", "--client-batch", "16",
            "--state-dir", str(state), "--out", str(resumed),
        ]) == 0
        resumed_payload = json.loads(resumed.read_text())
        full_payload = json.loads(full.read_text())
        assert resumed_payload["resumed_from_round"] == 2
        assert (
            resumed_payload["weights_sha256"] == full_payload["weights_sha256"]
        )
        assert resumed_payload["rounds"] == full_payload["rounds"]

    def test_client_batch_without_compile_rejected(self):
        with pytest.raises(ValueError, match="requires compile"):
            main([*self.ARGS, "--client-batch", "8"])


class TestUpdateCacheLifecycle:
    def test_cache_cleared_between_rounds(self):
        from repro.obs import VirtualClock, fresh
        from repro.sim import FLSimulator

        cfg = SimConfig(
            num_clients=16,
            rounds=2,
            seed=1,
            cohort=8,
            compile=True,
            client_batch=4,
        )
        with fresh(clock=VirtualClock()) as ctx:
            sim = FLSimulator(cfg, clock=ctx.clock)
            sim.run()
            assert sim._update_cache == {}
