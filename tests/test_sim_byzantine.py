"""Byzantine clients in the simulator: attacks, defence, determinism.

Holds the PR's headline acceptance test: at seed 0 with 30% of the fleet
sign-flipping, plain FedAvg visibly degrades while ``median`` and
``krum`` stay within 2 accuracy points of the attack-free run — the same
sweep ``benchmarks/bench_robust.py`` writes to ``BENCH_robust.json``.

Simulator construction and report serialisation come from the shared
``sim_runner`` / ``sim_factory`` / ``report_bytes`` fixtures in
``conftest.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import AttackKind, FaultPlan, FaultRates, apply_attack
from repro.tee.storage import InMemoryBackend, SecureStorage

SSK = b"\x07" * 32

# The tuned learning-signal shape (see SimConfig.drift): honest runs hit
# accuracy 1.0 inside 20 rounds, while a 30% sign-flip fleet cuts
# FedAvg's effective drift to (1 - 2*0.3)x and visibly stalls it.
SWEEP = dict(
    num_clients=60, rounds=20, seed=0, cohort=20, drift=0.3, update_scale=0.01
)


def run_sim(sim_runner, storage=None, **overrides):
    return sim_runner(storage=storage, **dict(SWEEP, **overrides))


class TestAttackKinds:
    def test_sign_flip_negates_and_preserves_norm(self):
        delta = np.arange(5, dtype=float)
        flipped = apply_attack(
            AttackKind.SIGN_FLIP, delta, seed=0, round_index=0, client_index=0
        )
        np.testing.assert_array_equal(flipped, -delta)

    def test_scale_multiplies(self):
        delta = np.ones(4)
        scaled = apply_attack(
            AttackKind.SCALE,
            delta,
            seed=0,
            round_index=0,
            client_index=0,
            strength=10.0,
        )
        np.testing.assert_array_equal(scaled, 10.0 * delta)

    def test_gauss_noise_is_seeded(self):
        delta = np.ones(8)
        kwargs = dict(seed=3, round_index=2, client_index=5)
        a = apply_attack(AttackKind.GAUSS_NOISE, delta, **kwargs)
        b = apply_attack(AttackKind.GAUSS_NOISE, delta, **kwargs)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, delta)

    def test_collude_is_identical_across_clients(self):
        # The colluding direction is keyed off (seed, round) only, so every
        # colluder in a round sends the same payload (norm-matched to its
        # own honest delta) — the duplicate-update case Krum's tie-break
        # exists for.
        delta = np.full(6, 2.0)
        a = apply_attack(
            AttackKind.COLLUDE, delta, seed=1, round_index=4, client_index=10
        )
        b = apply_attack(
            AttackKind.COLLUDE, delta, seed=1, round_index=4, client_index=42
        )
        np.testing.assert_array_equal(a, b)
        # strength (default 10) scales the colluding payload's norm.
        assert np.linalg.norm(a) == pytest.approx(10.0 * np.linalg.norm(delta))


class TestFaultPlanAttackers:
    def test_attacker_identity_is_persistent(self):
        plan = FaultPlan(FaultRates(), seed=5, byzantine=0.3)
        first = {i: plan.attack_for(i) for i in range(50)}
        again = {i: plan.attack_for(i) for i in range(50)}
        assert first == again
        hostile = sum(1 for kind in first.values() if kind is not None)
        assert 5 <= hostile <= 25  # ~30% of 50

    def test_explicit_injection_overrides_the_draw(self):
        plan = FaultPlan(FaultRates(), seed=5, byzantine=0.0)
        assert plan.attack_for(7) is None
        plan.inject_attack(7, AttackKind.SCALE)
        assert plan.attack_for(7) is AttackKind.SCALE

    def test_describe_mentions_byzantine(self):
        plan = FaultPlan(
            FaultRates(), seed=0, byzantine=0.25, attack="sign_flip"
        )
        assert "byzantine=0.25:sign_flip" in plan.describe()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(FaultRates(), seed=0, byzantine=1.5)
        with pytest.raises(ValueError):
            FaultPlan(FaultRates(), seed=0, byzantine=0.1, attack="meteor")


class TestAcceptance:
    """The PR's headline numbers, pinned at seed 0."""

    def test_fedavg_degrades_but_median_and_krum_hold(self, sim_runner):
        baseline = {
            rule: run_sim(sim_runner, rule=rule, byzantine=0.0)[
                "final_accuracy"
            ]
            for rule in ("fedavg", "median", "krum")
        }
        attacked = {
            rule: run_sim(sim_runner, rule=rule, byzantine=0.3)[
                "final_accuracy"
            ]
            for rule in ("fedavg", "median", "krum")
        }
        assert baseline["fedavg"] - attacked["fedavg"] > 0.05
        for rule in ("median", "krum"):
            assert baseline[rule] - attacked[rule] <= 0.02

    def test_attacked_updates_are_counted(self, sim_runner):
        report = run_sim(sim_runner, rule="median", byzantine=0.3, rounds=5)
        assert report["totals"]["attacked"] > 0
        assert report["rule"] == "median"
        for round_report in report["rounds"]:
            assert "attacked" in round_report


class TestByzantineDeterminism:
    def test_same_seed_same_bytes_with_quarantine_events(
        self, sim_runner, report_bytes
    ):
        settings = dict(
            rule="trimmed_mean",
            byzantine=0.3,
            attack="scale",
            max_norm=6.0,
            rounds=10,
        )
        reports = [run_sim(sim_runner, **settings) for _ in range(2)]
        assert report_bytes(reports[0]) == report_bytes(reports[1])
        # The run must actually exercise the ledger, not just agree on
        # empty reports.
        assert reports[0]["totals"]["admission_rejected"] > 0
        assert reports[0]["totals"]["quarantined"] > 0

    def test_resume_reproduces_quarantine_state(
        self, sim_runner, sim_factory, report_bytes
    ):
        settings = dict(
            SWEEP,
            rule="trimmed_mean",
            byzantine=0.3,
            attack="scale",
            max_norm=6.0,
            rounds=10,
        )
        uninterrupted = sim_runner(**settings)

        storage = SecureStorage(InMemoryBackend(), ssk=SSK)
        with sim_factory(storage=storage, **settings) as killed:
            for _ in range(4):
                killed.step_round()
            # coordinator dies; reputation ledger lives in the checkpoint
        with sim_factory(storage=storage, **settings) as resumed_sim:
            assert resumed_sim.resumed_from == 4
            resumed = resumed_sim.run()

        # resumed_from_round is the one field that legitimately differs.
        assert resumed.pop("resumed_from_round") == 4
        uninterrupted.pop("resumed_from_round")
        assert report_bytes(resumed) == report_bytes(uninterrupted)

    def test_different_rules_different_weights_under_attack(self, sim_runner):
        digests = {
            rule: run_sim(sim_runner, rule=rule, byzantine=0.3, rounds=5)[
                "weights_sha256"
            ]
            for rule in ("fedavg", "median", "krum")
        }
        assert len(set(digests.values())) == 3


class TestQuarantineInTheLoop:
    def test_quarantined_clients_sit_out_selection(self, sim_runner):
        report = run_sim(
            sim_runner,
            rule="fedavg",
            byzantine=0.3,
            attack="scale",
            max_norm=6.0,
            rounds=10,
        )
        assert report["totals"]["quarantined"] > 0
        # Quarantine bites: later rounds reject fewer updates because the
        # offenders were never selected.
        rejected = [r["admission_rejected"] for r in report["rounds"]]
        assert sum(rejected[5:]) < sum(rejected[:5])

    def test_admission_clip_admits_rescaled_updates(self, sim_runner):
        clipped = run_sim(
            sim_runner,
            rule="fedavg",
            byzantine=0.2,
            attack="scale",
            max_norm=6.0,
            clip=True,
            rounds=5,
        )
        assert clipped["totals"]["admission_clipped"] > 0
        assert clipped["totals"]["admission_rejected"] == 0
