"""The event-driven FL simulator: determinism, resilience, checkpoint/resume."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.obs import VirtualClock
from repro.sim import FLSimulator, FaultPlan, FaultRates, SimConfig
from repro.tee.storage import InMemoryBackend, SecureStorage

SSK = b"\x07" * 32


def make_sim(ctx, storage=None, rates=None, plan=None, **overrides):
    defaults = dict(num_clients=120, rounds=4, seed=13, cohort=12)
    defaults.update(overrides)
    config = SimConfig(**defaults)
    fault_plan = plan or FaultPlan(rates or FaultRates(), seed=config.seed)
    return FLSimulator(
        config, fault_plan=fault_plan, storage=storage, clock=ctx.clock
    )


def report_bytes(report):
    return json.dumps(report, sort_keys=True).encode()


class TestDeterminism:
    def test_same_seed_same_report_bytes(self):
        rates = FaultRates(
            dropout=0.15, straggler=0.1, corrupt=0.05, pool_exhaust=0.03,
            attestation=0.02,
        )
        reports = []
        for _ in range(2):
            with obs.fresh(clock=VirtualClock()) as ctx:
                reports.append(make_sim(ctx, rates=rates).run())
        assert report_bytes(reports[0]) == report_bytes(reports[1])

    def test_different_seed_different_weights(self):
        digests = []
        for seed in (1, 2):
            with obs.fresh(clock=VirtualClock()) as ctx:
                digests.append(make_sim(ctx, seed=seed).run()["weights_sha256"])
        assert digests[0] != digests[1]

    def test_report_is_json_round_trippable(self):
        with obs.fresh(clock=VirtualClock()) as ctx:
            report = make_sim(ctx, rates=FaultRates(dropout=0.2)).run()
        assert json.loads(json.dumps(report)) == json.loads(
            json.dumps(report)
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimConfig(num_clients=0, rounds=1)
        with pytest.raises(ValueError):
            SimConfig(num_clients=10, rounds=0)
        with pytest.raises(ValueError):
            SimConfig(num_clients=10, rounds=1, cohort=11)
        with pytest.raises(ValueError):
            SimConfig(num_clients=10, rounds=1, overprovision=0.5)
        with pytest.raises(ValueError):
            SimConfig(num_clients=10, rounds=1, quorum=0.0)


class TestResilience:
    def test_heavy_faults_still_aggregate_every_round(self):
        """30% dropout + stragglers: over-provisioning absorbs the losses."""
        rates = FaultRates(dropout=0.3, straggler=0.15)
        with obs.fresh(clock=VirtualClock()) as ctx:
            sim = make_sim(
                ctx, rates=rates, num_clients=300, rounds=5, cohort=20,
                overprovision=1.6,
            )
            report = sim.run()
            registry = ctx.registry
        totals = report["totals"]
        assert totals["degraded"] == 0
        assert totals["dropouts"] > 0 and totals["stragglers"] > 0
        # over-provisioning was actually exercised
        assert totals["asked"] > 5 * 20
        for outcome in report["rounds"]:
            assert not outcome["degraded"]
            assert len(outcome["collected"]) >= sim.config.quorum_count
        # metrics record the exact deterministic fault counts
        assert registry.counter("sim.dropouts").total() == totals["dropouts"]
        assert registry.counter("sim.stragglers").total() == totals["stragglers"]
        assert registry.counter("sim.rounds").total() == 5

    def test_exact_fault_counts_with_pinned_plan(self):
        """Explicit injections give exactly known metric totals."""
        with obs.fresh(clock=VirtualClock()) as ctx:
            probe = make_sim(ctx)
            cohort = probe._select_cohort(0)
        plan = FaultPlan(seed=13)
        plan.inject(0, cohort[0], "drop")
        plan.inject(0, cohort[1], "drop")
        plan.inject(0, cohort[2], "fail_attestation")
        plan.inject(0, cohort[3], "corrupt")
        plan.inject(0, cohort[4], "exhaust_pool")
        with obs.fresh(clock=VirtualClock()) as ctx:
            sim = make_sim(ctx, plan=plan, rounds=1)
            report = sim.run()
            registry = ctx.registry
        assert registry.counter("sim.dropouts").total() == 2
        assert registry.counter("sim.attestation_failures").total() == 1
        assert registry.counter("sim.corruptions").total() == 1
        assert registry.counter("sim.pool_exhaustions").total() == 1
        # both transient faults retried (and, with default budget, recovered)
        assert registry.counter("fl.retry.attempts").total() == 2
        assert registry.counter("fl.retry.giveups").total() == 0
        totals = report["totals"]
        assert totals["dropouts"] == 2 and totals["evicted"] == 1
        assert totals["retries"] == 2 and totals["giveups"] == 0

    def test_transient_faults_recover_via_retry(self):
        with obs.fresh(clock=VirtualClock()) as ctx:
            probe = make_sim(ctx, overprovision=1.0)
            cohort = probe._select_cohort(0)
        plan = FaultPlan(seed=13)
        for member in cohort[:3]:
            plan.inject(0, member, "corrupt")
        with obs.fresh(clock=VirtualClock()) as ctx:
            # overprovision=1.0: every cohort member is needed, so the
            # corrupted ones *must* recover via retry for the round to fill.
            report = make_sim(
                ctx, plan=plan, rounds=1, overprovision=1.0
            ).run()
        outcome = report["rounds"][0]
        assert outcome["corrupted"] == 3
        assert outcome["retries"] == 3
        # the retried members still delivered: the round filled its cohort
        assert len(outcome["collected"]) == 12
        assert not outcome["degraded"]

    def test_total_blackout_degrades_gracefully(self):
        """A round below quorum reuses the previous global model."""
        with obs.fresh(clock=VirtualClock()) as ctx:
            sim = make_sim(ctx, rounds=2)
            before = sim.run()  # baseline run, no faults
        plan = FaultPlan(FaultRates(dropout=1.0), seed=13).inject(1, -1, None)
        with obs.fresh(clock=VirtualClock()) as ctx:
            sim = make_sim(ctx, plan=plan, rounds=1)
            healthy_digest_before = sim.weights_digest()
            report = sim.run()
            registry = ctx.registry
            degraded_digest = sim.weights_digest()
        outcome = report["rounds"][0]
        assert outcome["degraded"]
        assert outcome["collected"] == []
        # weights unchanged by the degraded round
        assert degraded_digest == healthy_digest_before
        assert registry.counter("sim.rounds.degraded").total() == 1
        assert before["weights_sha256"] != degraded_digest

    def test_straggle_misses_deadline(self):
        with obs.fresh(clock=VirtualClock()) as ctx:
            probe = make_sim(ctx)
            cohort = probe._select_cohort(0)
        # Straggle the whole cohort hard enough that nobody can make the
        # deadline: the round must settle exactly at the deadline, degraded.
        plan = FaultPlan(seed=13)
        for member in cohort:
            plan.inject(0, member, "straggle")
        with obs.fresh(clock=VirtualClock()) as ctx:
            report = make_sim(
                ctx, plan=plan, rounds=1, straggler_factor=1000.0
            ).run()
        outcome = report["rounds"][0]
        assert outcome["stragglers"] == outcome["asked"]
        assert outcome["degraded"]
        assert outcome["virtual_seconds"] == pytest.approx(5.0)  # deadline

    def test_virtual_time_advances_with_rounds(self):
        with obs.fresh(clock=VirtualClock()) as ctx:
            report = make_sim(ctx).run()
        assert report["virtual_seconds"] > 0
        starts = [o["started_at"] for o in report["rounds"]]
        assert starts == sorted(starts)
        for outcome in report["rounds"]:
            assert outcome["aggregated_at"] > outcome["started_at"]

    def test_rounds_emit_spans(self):
        with obs.fresh(clock=VirtualClock()) as ctx:
            make_sim(ctx, rounds=3).run()
            spans = [
                s
                for s in ctx.tracer.export()["spans"]
                if s["name"] == "sim.round"
            ]
        assert len(spans) == 3
        assert [s["attributes"]["cycle"] for s in spans] == [0, 1, 2]


class TestCheckpointResume:
    def test_kill_after_round_2_resume_bitwise_identical(self):
        """The acceptance-criterion scenario: uninterrupted vs killed+resumed."""
        rates = FaultRates(dropout=0.2, straggler=0.1, corrupt=0.05)
        with obs.fresh(clock=VirtualClock()) as ctx:
            uninterrupted = make_sim(ctx, rates=rates, rounds=6).run()

        storage = SecureStorage(InMemoryBackend(), ssk=SSK)
        with obs.fresh(clock=VirtualClock()) as ctx:
            killed = make_sim(ctx, rates=rates, rounds=6, storage=storage)
            killed.step_round()
            killed.step_round()
            # the coordinator dies here; `killed` is abandoned
        with obs.fresh(clock=VirtualClock()) as ctx:
            resumed_sim = make_sim(ctx, rates=rates, rounds=6, storage=storage)
            assert resumed_sim.resumed_from == 2
            resumed = resumed_sim.run()
            assert ctx.registry.counter("sim.resumes").total() == 1

        assert resumed["weights_sha256"] == uninterrupted["weights_sha256"]
        assert resumed["rounds"] == uninterrupted["rounds"]
        assert resumed["virtual_seconds"] == uninterrupted["virtual_seconds"]

    def test_resume_at_every_cut_point(self):
        with obs.fresh(clock=VirtualClock()) as ctx:
            reference = make_sim(ctx, rounds=4).run()
        for cut in range(1, 4):
            storage = SecureStorage(InMemoryBackend(), ssk=SSK)
            with obs.fresh(clock=VirtualClock()) as ctx:
                partial = make_sim(ctx, rounds=4, storage=storage)
                for _ in range(cut):
                    partial.step_round()
            with obs.fresh(clock=VirtualClock()) as ctx:
                resumed = make_sim(ctx, rounds=4, storage=storage).run()
            assert resumed["weights_sha256"] == reference["weights_sha256"], cut
            assert resumed["rounds"] == reference["rounds"], cut

    def test_completed_run_resumes_as_noop(self):
        storage = SecureStorage(InMemoryBackend(), ssk=SSK)
        with obs.fresh(clock=VirtualClock()) as ctx:
            first = make_sim(ctx, rounds=3, storage=storage).run()
        with obs.fresh(clock=VirtualClock()) as ctx:
            again_sim = make_sim(ctx, rounds=3, storage=storage)
            assert again_sim.resumed_from == 3
            again = again_sim.run()
        assert again["weights_sha256"] == first["weights_sha256"]
        assert again["rounds"] == first["rounds"]

    def test_checkpoints_counted(self):
        storage = SecureStorage(InMemoryBackend(), ssk=SSK)
        with obs.fresh(clock=VirtualClock()) as ctx:
            make_sim(ctx, rounds=3, storage=storage).run()
            assert ctx.registry.counter("sim.checkpoints").total() == 3


class TestScale:
    def test_thousand_clients_is_fast_and_exact(self):
        reports = []
        for _ in range(2):
            with obs.fresh(clock=VirtualClock()) as ctx:
                sim = FLSimulator(
                    SimConfig(num_clients=1000, rounds=3, seed=7, cohort=50),
                    fault_plan=FaultPlan(
                        FaultRates(dropout=0.2, straggler=0.05), seed=7
                    ),
                    clock=ctx.clock,
                )
                reports.append(sim.run())
        assert report_bytes(reports[0]) == report_bytes(reports[1])
        assert reports[0]["totals"]["rounds"] == 3

    def test_wire_bytes_drive_transfer_time(self):
        """A bigger model makes simulated rounds take longer."""
        from repro.nn.zoo import mlp

        times = []
        for hidden in ((4,), (64, 64)):
            with obs.fresh(clock=VirtualClock()) as ctx:
                model = mlp(
                    num_classes=4, input_shape=(6,), hidden=hidden, seed=0
                )
                sim = FLSimulator(
                    SimConfig(num_clients=40, rounds=2, seed=5, cohort=8),
                    model=model,
                    clock=ctx.clock,
                )
                times.append(sim.run()["virtual_seconds"])
        assert times[1] > times[0]
