"""VirtualClock and the discrete-event loop."""

from __future__ import annotations

import pytest

from repro.obs import VirtualClock
from repro.sim import EventLoop


class TestVirtualClock:
    def test_starts_where_told(self):
        assert VirtualClock().time == 0.0
        assert VirtualClock(start=5.5).time == 5.5

    def test_reads_have_no_side_effects_by_default(self):
        clock = VirtualClock()
        for _ in range(10):
            clock.now()
        assert clock.time == 0.0

    def test_read_tick_spaces_timestamps(self):
        clock = VirtualClock(read_tick=0.25)
        assert clock.now() == 0.0
        assert clock.now() == 0.25
        assert clock.time == 0.5

    def test_advance_and_advance_to(self):
        clock = VirtualClock()
        clock.advance(2.0)
        assert clock.time == 2.0
        clock.advance_to(7.0)
        assert clock.time == 7.0
        clock.advance_to(7.0)  # no-op, not an error
        assert clock.time == 7.0

    def test_time_never_rewinds(self):
        clock = VirtualClock(start=3.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.advance_to(2.0)


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(3.0, lambda: fired.append("c"))
        loop.schedule_at(1.0, lambda: fired.append("a"))
        loop.schedule_at(2.0, lambda: fired.append("b"))
        loop.run()
        assert fired == ["a", "b", "c"]
        assert loop.clock.time == 3.0

    def test_ties_break_by_insertion_order(self):
        loop = EventLoop()
        fired = []
        for tag in range(5):
            loop.schedule_at(1.0, lambda t=tag: fired.append(t))
        loop.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_step_advances_clock_to_event(self):
        loop = EventLoop()
        loop.schedule_at(4.5, lambda: None)
        assert loop.step() is True
        assert loop.clock.time == 4.5
        assert loop.step() is False

    def test_schedule_in_is_relative(self):
        loop = EventLoop()
        loop.clock.advance_to(10.0)
        event = loop.schedule_in(2.5, lambda: None)
        assert event.when == 12.5
        with pytest.raises(ValueError):
            loop.schedule_in(-0.1, lambda: None)

    def test_cannot_schedule_in_the_past(self):
        loop = EventLoop()
        loop.clock.advance_to(5.0)
        with pytest.raises(ValueError):
            loop.schedule_at(4.0, lambda: None)

    def test_cancelled_events_do_not_fire(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule_at(1.0, lambda: fired.append("x"))
        loop.schedule_at(2.0, lambda: fired.append("y"))
        event.cancel()
        assert len(loop) == 1
        loop.run()
        assert fired == ["y"]

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                loop.schedule_in(1.0, lambda: chain(n + 1))

        loop.schedule_at(1.0, lambda: chain(0))
        loop.run()
        assert fired == [0, 1, 2, 3]
        assert loop.clock.time == 4.0

    def test_run_until_leaves_later_events_queued(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(1.0, lambda: fired.append(1))
        loop.schedule_at(5.0, lambda: fired.append(5))
        assert loop.run(until=2.0) == 1
        assert fired == [1]
        assert len(loop) == 1

    def test_run_max_events_bound(self):
        loop = EventLoop()
        for i in range(10):
            loop.schedule_at(float(i + 1), lambda: None)
        assert loop.run(max_events=4) == 4
        assert len(loop) == 6

    def test_clear_discards_pending(self):
        loop = EventLoop()
        loop.schedule_at(1.0, lambda: None)
        loop.schedule_at(2.0, lambda: None)
        assert loop.clear() == 2
        assert loop.step() is False

    def test_shared_clock(self):
        clock = VirtualClock()
        loop = EventLoop(clock)
        loop.schedule_at(3.0, lambda: None)
        loop.run()
        assert clock.time == 3.0
