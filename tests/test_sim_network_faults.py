"""Network model sampling and the deterministic fault plan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import FaultKind, FaultPlan, FaultRates, NetworkModel


class TestNetworkModel:
    def test_sample_is_deterministic_in_the_seed(self):
        a = NetworkModel.sample(50, np.random.default_rng(3))
        b = NetworkModel.sample(50, np.random.default_rng(3))
        assert np.array_equal(a.latency_seconds, b.latency_seconds)
        assert np.array_equal(
            a.bandwidth_bytes_per_second, b.bandwidth_bytes_per_second
        )

    def test_transfer_time_scales_with_payload(self):
        model = NetworkModel.sample(10, np.random.default_rng(0))
        small = model.transfer_seconds(3, 1_000)
        large = model.transfer_seconds(3, 1_000_000)
        assert large > small
        # latency-only floor: an empty message still takes the propagation delay
        assert model.transfer_seconds(3, 0) == pytest.approx(
            float(model.latency_seconds[3])
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            NetworkModel(-np.ones(3), np.ones(3))
        with pytest.raises(ValueError):
            NetworkModel(np.ones(3), np.zeros(3))
        with pytest.raises(ValueError):
            NetworkModel.sample(0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            NetworkModel.sample(4, np.random.default_rng(0)).transfer_seconds(0, -1)


class TestFaultRates:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultRates(dropout=-0.1)
        with pytest.raises(ValueError):
            FaultRates(dropout=1.5)
        with pytest.raises(ValueError):
            FaultRates(dropout=0.6, straggler=0.6)

    def test_thresholds_are_cumulative_and_ordered(self):
        rates = FaultRates(dropout=0.1, corrupt=0.2)
        edges = rates.thresholds()
        assert edges == (
            (pytest.approx(0.1), FaultKind.DROP),
            (pytest.approx(0.3), FaultKind.CORRUPT),
        )

    def test_transient_taxonomy(self):
        assert FaultKind.CORRUPT.transient
        assert FaultKind.EXHAUST_POOL.transient
        assert not FaultKind.DROP.transient
        assert not FaultKind.STRAGGLE.transient
        assert not FaultKind.FAIL_ATTESTATION.transient


class TestFaultPlan:
    def test_no_rates_means_no_faults(self):
        plan = FaultPlan(seed=1)
        assert all(
            plan.fault_for(r, c) is None for r in range(5) for c in range(20)
        )

    def test_same_seed_same_faults_any_query_order(self):
        rates = FaultRates(dropout=0.3, straggler=0.2, attestation=0.1)
        a = FaultPlan(rates, seed=11)
        b = FaultPlan(rates, seed=11)
        cells = [(r, c) for r in range(4) for c in range(30)]
        forward = {cell: a.fault_for(*cell) for cell in cells}
        backward = {cell: b.fault_for(*cell) for cell in reversed(cells)}
        assert forward == backward
        assert any(v is not None for v in forward.values())

    def test_different_seeds_differ(self):
        rates = FaultRates(dropout=0.5)
        a = FaultPlan(rates, seed=1)
        b = FaultPlan(rates, seed=2)
        cells = [(r, c) for r in range(4) for c in range(50)]
        assert [a.fault_for(*cell) for cell in cells] != [
            b.fault_for(*cell) for cell in cells
        ]

    def test_rates_approximately_realised(self):
        plan = FaultPlan(FaultRates(dropout=0.25), seed=0)
        hits = sum(
            plan.fault_for(0, c) is FaultKind.DROP for c in range(2000)
        )
        assert 0.20 < hits / 2000 < 0.30

    def test_explicit_injection_overrides_sampling(self):
        plan = FaultPlan(FaultRates(dropout=1.0), seed=0)
        plan.inject(2, 7, "corrupt")
        plan.inject(2, 8, None)  # force health
        assert plan.fault_for(2, 7) is FaultKind.CORRUPT
        assert plan.fault_for(2, 8) is None
        assert plan.fault_for(2, 9) is FaultKind.DROP

    def test_changing_one_rate_keeps_other_kinds_stable(self):
        # The single-draw bucketing means adding a new fault kind *after*
        # existing ones in the realisation order never reshuffles which
        # clients realise the earlier kinds.
        base = FaultPlan(FaultRates(dropout=0.2), seed=5)
        extended = FaultPlan(
            FaultRates(dropout=0.2, attestation=0.1), seed=5
        )
        for client in range(200):
            if base.fault_for(0, client) is FaultKind.DROP:
                assert extended.fault_for(0, client) is FaultKind.DROP

    def test_describe_mentions_active_rates(self):
        plan = FaultPlan(FaultRates(dropout=0.3), seed=9).inject(0, 0, "drop")
        text = plan.describe()
        assert "dropout=0.3" in text and "1 pinned" in text
