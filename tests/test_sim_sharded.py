"""Simulator-level tests for sharded hierarchical aggregation."""

import json

import pytest

from repro.cli import main
from repro.obs import VirtualClock, fresh
from repro.sim import FLSimulator, FaultPlan, FaultRates, SimConfig


def run_sim(**kwargs):
    fault_kwargs = {
        "rates": kwargs.pop("rates", None),
        "seed": kwargs.get("seed", 0),
        "shard_down": kwargs.pop("shard_down", 0.0),
    }
    plan = kwargs.pop("fault_plan", None) or FaultPlan(**fault_kwargs)
    config = SimConfig(**kwargs)
    with fresh(clock=VirtualClock()) as ctx:
        simulator = FLSimulator(config, fault_plan=plan, clock=ctx.clock)
        report = simulator.run()
        report["metrics"] = ctx.registry.snapshot()
    return report


class TestShardedEqualsFlat:
    @pytest.mark.parametrize("shards", [2, 7, 64])
    def test_weights_sha_independent_of_shard_count(self, shards):
        base = dict(
            num_clients=150,
            rounds=3,
            seed=7,
            cohort=32,
            rates=FaultRates(dropout=0.1, straggler=0.05),
        )
        flat = run_sim(**base)
        sharded = run_sim(shards=shards, **base)
        assert sharded["weights_sha256"] == flat["weights_sha256"]

    def test_report_is_deterministic(self):
        a = run_sim(num_clients=80, rounds=2, seed=3, shards=8)
        b = run_sim(num_clients=80, rounds=2, seed=3, shards=8)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_shard_traffic_charged(self):
        report = run_sim(num_clients=80, rounds=2, seed=3, shards=8)
        assert report["totals"]["shard_bytes"] > 0
        assert report["rounds"][0]["shards"] == 8
        # Shard->root transfers take virtual time: the sharded run cannot
        # finish earlier than the flat one at the same seed.
        flat = run_sim(num_clients=80, rounds=2, seed=3)
        assert flat["totals"]["shard_bytes"] == 0
        assert report["virtual_seconds"] >= flat["virtual_seconds"]


class TestBoundedAggregatorMemory:
    def test_peak_bytes_independent_of_fleet_size(self):
        peaks = [
            run_sim(num_clients=n, rounds=1, seed=2, cohort=min(n, 64), shards=4)[
                "aggregator_peak_bytes"
            ]
            for n in (64, 512, 2048)
        ]
        assert peaks[0] == peaks[1] == peaks[2]
        assert peaks[0] > 0


class TestShardFaults:
    def test_dead_shard_feeds_retry_machinery(self):
        healthy = run_sim(num_clients=100, rounds=3, seed=5, shards=8)
        faulty = run_sim(
            num_clients=100, rounds=3, seed=5, shards=8, shard_down=0.4
        )
        assert faulty["totals"]["shard_down"] > 0
        assert faulty["totals"]["retries"] > healthy["totals"]["retries"]
        counters = faulty["metrics"]["counters"]
        assert sum(counters["sim.shard.down"].values()) > 0
        assert sum(counters["sim.shard.losses"].values()) > 0

    def test_rerouted_retries_preserve_round_progress(self):
        # Pin one shard dead: its clients' first uploads are lost, but the
        # retry re-routes to a surviving shard and the round still collects.
        plan = FaultPlan(seed=5).inject_shard(0, 0)
        report = run_sim(
            num_clients=40, rounds=1, seed=5, cohort=16, shards=4,
            fault_plan=plan,
        )
        (outcome,) = report["rounds"]
        assert outcome["dead_shards"] == [0]
        assert outcome["shard_down"] > 0
        assert not outcome["degraded"]
        assert len(outcome["collected"]) >= 8

    def test_all_shards_dead_degrades_round(self):
        plan = FaultPlan(seed=1)
        for shard in range(4):
            plan.inject_shard(0, shard)
        report = run_sim(
            num_clients=30, rounds=1, seed=1, cohort=8, shards=4,
            fault_plan=plan,
        )
        (outcome,) = report["rounds"]
        assert outcome["degraded"]
        assert len(outcome["collected"]) == 0

    def test_shard_draws_do_not_reshuffle_client_faults(self):
        base = dict(
            num_clients=60, rounds=2, seed=9, shards=4,
            rates=FaultRates(dropout=0.2),
        )
        quiet = run_sim(**base)
        noisy = run_sim(shard_down=0.3, **base)
        for a, b in zip(quiet["rounds"], noisy["rounds"]):
            assert a["dropouts"] == b["dropouts"]


class TestCliSharded:
    def run_cli(self, tmp_path, name, *extra):
        out = tmp_path / name
        argv = [
            "simulate", "--clients", "90", "--rounds", "2", "--seed", "6",
            "--out", str(out), *extra,
        ]
        assert main(argv) == 0
        return out.read_bytes()

    def test_shards_flag_byte_reproducible(self, tmp_path):
        first = self.run_cli(tmp_path, "a.json", "--shards", "16")
        second = self.run_cli(tmp_path, "b.json", "--shards", "16")
        assert first == second

    def test_shards_flag_preserves_weights(self, tmp_path):
        flat = json.loads(self.run_cli(tmp_path, "flat.json"))
        sharded = json.loads(
            self.run_cli(tmp_path, "sharded.json", "--shards", "16")
        )
        assert sharded["weights_sha256"] == flat["weights_sha256"]

    def test_shard_down_flag(self, tmp_path):
        payload = json.loads(
            self.run_cli(
                tmp_path, "down.json", "--shards", "8", "--shard-down", "0.5"
            )
        )
        assert payload["totals"]["shard_down"] > 0
