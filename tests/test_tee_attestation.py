"""Tests for remote attestation (measure / quote / verify)."""

import pytest

from repro.tee import (
    AttestationDevice,
    AttestationError,
    AttestationVerifier,
    TrustedApplication,
)


def setup_pair():
    ta = TrustedApplication("gradsec")
    device = AttestationDevice("device-1")
    verifier = AttestationVerifier()
    verifier.register_device("device-1", device.key)
    verifier.allow_measurement(ta.measurement())
    return ta, device, verifier


class TestAttestation:
    def test_happy_path(self):
        ta, device, verifier = setup_pair()
        nonce = verifier.challenge("device-1")
        assert verifier.verify(device.quote(ta, nonce)) is True

    def test_unknown_device_rejected(self):
        ta, device, verifier = setup_pair()
        rogue = AttestationDevice("device-2")
        nonce = verifier.challenge("device-1")
        quote = rogue.quote(ta, nonce)
        with pytest.raises(AttestationError, match="unknown device"):
            verifier.verify(quote)

    def test_forged_signature_rejected(self):
        ta, device, verifier = setup_pair()
        imposter = AttestationDevice("device-1")  # different key, same id
        nonce = verifier.challenge("device-1")
        with pytest.raises(AttestationError, match="bad signature"):
            verifier.verify(imposter.quote(ta, nonce))

    def test_unapproved_measurement_rejected(self):
        ta, device, verifier = setup_pair()
        evil_ta = TrustedApplication("gradsec", version="evil")
        nonce = verifier.challenge("device-1")
        with pytest.raises(AttestationError, match="allow-list"):
            verifier.verify(device.quote(evil_ta, nonce))

    def test_replayed_quote_rejected(self):
        ta, device, verifier = setup_pair()
        nonce = verifier.challenge("device-1")
        quote = device.quote(ta, nonce)
        verifier.verify(quote)
        with pytest.raises(AttestationError, match="nonce"):
            verifier.verify(quote)  # nonce already consumed

    def test_quote_for_wrong_nonce_rejected(self):
        ta, device, verifier = setup_pair()
        verifier.challenge("device-1")
        stale = device.quote(ta, b"x" * 16)
        with pytest.raises(AttestationError, match="nonce"):
            verifier.verify(stale)

    def test_quote_without_challenge_rejected(self):
        ta, device, verifier = setup_pair()
        quote = device.quote(ta, b"n" * 16)
        with pytest.raises(AttestationError):
            verifier.verify(quote)
