"""The cost model must reproduce the paper's Table 6 within tolerance."""

import pytest

from repro.bench.reference import (
    TABLE6_BASELINE,
    TABLE6_DYNAMIC_MW2,
    TABLE6_STATIC,
)
from repro.nn import lenet5
from repro.tee import RASPBERRY_PI_3B, CostModel, CycleCost, SecureMemoryExhausted


@pytest.fixture(scope="module")
def model():
    return lenet5()


@pytest.fixture(scope="module")
def cost_model():
    return CostModel()


class TestBaseline:
    def test_baseline_user_time(self, model, cost_model):
        base = cost_model.cycle_cost(model)
        assert base.user_seconds == pytest.approx(TABLE6_BASELINE[0], rel=0.02)
        assert base.kernel_seconds == pytest.approx(TABLE6_BASELINE[1], rel=0.05)
        assert base.alloc_seconds == 0.0
        assert base.tee_memory_bytes == 0


class TestStaticConfigs:
    @pytest.mark.parametrize("config", sorted(TABLE6_STATIC))
    def test_total_time_within_15_percent(self, model, cost_model, config):
        paper_user, paper_kernel, paper_alloc, _ = TABLE6_STATIC[config]
        paper_total = paper_user + paper_kernel + paper_alloc
        measured = cost_model.cycle_cost(model, config).total_seconds
        assert measured == pytest.approx(paper_total, rel=0.15)

    @pytest.mark.parametrize("config", sorted(TABLE6_STATIC))
    def test_memory_within_10_percent(self, model, cost_model, config):
        paper_mib = TABLE6_STATIC[config][3]
        measured = cost_model.cycle_cost(model, config).tee_memory_mib
        assert measured == pytest.approx(paper_mib, rel=0.10)

    def test_l5_allocation_cliff(self, model, cost_model):
        """The paper's signature effect: L5's 76.8K params make allocation
        dominate (4.68 s vs 0.34 s for a conv layer)."""
        l5 = cost_model.cycle_cost(model, (5,)).alloc_seconds
        l3 = cost_model.cycle_cost(model, (3,)).alloc_seconds
        assert l5 > 10 * l3
        assert l5 == pytest.approx(4.68, rel=0.1)

    def test_allocation_additivity(self, model, cost_model):
        a = cost_model.cycle_cost(model, (2,)).alloc_seconds
        b = cost_model.cycle_cost(model, (5,)).alloc_seconds
        combined = cost_model.cycle_cost(model, (2, 5)).alloc_seconds
        assert combined == pytest.approx(a + b, rel=1e-9)

    def test_invalid_layer_rejected(self, model, cost_model):
        with pytest.raises(IndexError):
            cost_model.cycle_cost(model, (9,))


class TestDynamic:
    def test_weighted_average_matches_manual(self, model, cost_model):
        windows = [(1, 2), (2, 3), (3, 4), (4, 5)]
        probs = [0.2, 0.1, 0.6, 0.1]
        avg, per_window = cost_model.dynamic_cost(model, windows, probs)
        manual = sum(
            p * per_window[w].total_seconds for w, p in zip(windows, probs)
        )
        assert avg.total_seconds == pytest.approx(manual, rel=1e-9)

    def test_memory_is_worst_case(self, model, cost_model):
        windows = [(1, 2), (3, 4)]
        avg, per_window = cost_model.dynamic_cost(model, windows, [0.5, 0.5])
        assert avg.tee_memory_bytes == max(
            c.tee_memory_bytes for c in per_window.values()
        )

    def test_mw2_windows_match_table6(self, model, cost_model):
        for config, (pu, pk, pa, pm) in TABLE6_DYNAMIC_MW2.items():
            cost = cost_model.cycle_cost(model, config)
            assert cost.total_seconds == pytest.approx(pu + pk + pa, rel=0.2)
            assert cost.tee_memory_mib == pytest.approx(pm, rel=0.10)

    def test_probabilities_must_sum_to_one(self, model, cost_model):
        with pytest.raises(ValueError, match="sum to 1"):
            cost_model.dynamic_cost(model, [(1, 2), (2, 3)], [0.5, 0.1])

    def test_windows_probs_alignment(self, model, cost_model):
        with pytest.raises(ValueError, match="align"):
            cost_model.dynamic_cost(model, [(1, 2)], [0.5, 0.5])


class TestMemoryEnforcement:
    def test_all_layers_exceed_4mib_at_large_batch(self, model):
        cm = CostModel(batch_size=128)
        with pytest.raises(SecureMemoryExhausted):
            cm.check_fits(model, (1, 2, 3, 4, 5))

    def test_paper_configs_fit(self, model, cost_model):
        for config in TABLE6_STATIC:
            cost_model.check_fits(model, config)  # no exception

    def test_overhead_percent(self, model, cost_model):
        base = cost_model.cycle_cost(model)
        l2 = cost_model.cycle_cost(model, (2,))
        paper = (1.672 + 0.652 + 0.34) / (2.191 + 0.021) - 1
        assert l2.overhead_percent(base) == pytest.approx(paper * 100, abs=6)


class TestCycleCost:
    def test_plus_and_scaled(self):
        a = CycleCost(1.0, 2.0, 3.0, 100)
        b = a.plus(a.scaled(0.5))
        assert b.user_seconds == pytest.approx(1.5)
        assert b.tee_memory_bytes == 150
