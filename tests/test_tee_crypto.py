"""Tests for the simulator's authenticated encryption and key derivation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tee import crypto
from repro.tee.crypto import CryptoError, SealedBlob, decrypt, derive_key, encrypt, random_key

settings.register_profile("ci", max_examples=30, deadline=None)
settings.load_profile("ci")


class TestEncryptDecrypt:
    def test_roundtrip(self):
        key = random_key()
        blob = encrypt(key, b"hello enclave")
        assert decrypt(key, blob) == b"hello enclave"

    def test_empty_plaintext(self):
        key = random_key()
        assert decrypt(key, encrypt(key, b"")) == b""

    def test_wrong_key_fails(self):
        blob = encrypt(random_key(), b"data")
        with pytest.raises(CryptoError):
            decrypt(random_key(), blob)

    def test_ciphertext_tamper_detected(self):
        key = random_key()
        blob = encrypt(key, b"gradient bytes")
        flipped = bytes([blob.ciphertext[0] ^ 1]) + blob.ciphertext[1:]
        with pytest.raises(CryptoError, match="tag"):
            decrypt(key, SealedBlob(blob.nonce, flipped, blob.tag))

    def test_nonce_tamper_detected(self):
        key = random_key()
        blob = encrypt(key, b"x" * 64)
        bad_nonce = bytes(16)
        with pytest.raises(CryptoError):
            decrypt(key, SealedBlob(bad_nonce, blob.ciphertext, blob.tag))

    def test_fresh_nonce_per_encryption(self):
        key = random_key()
        a = encrypt(key, b"same")
        b = encrypt(key, b"same")
        assert a.nonce != b.nonce
        assert a.ciphertext != b.ciphertext

    def test_explicit_nonce_is_deterministic(self):
        key = random_key()
        nonce = bytes(range(16))
        assert (
            encrypt(key, b"abc", nonce).ciphertext
            == encrypt(key, b"abc", nonce).ciphertext
        )

    def test_bad_key_length_rejected(self):
        with pytest.raises(ValueError):
            encrypt(b"short", b"data")

    def test_blob_serialisation_roundtrip(self):
        key = random_key()
        blob = encrypt(key, b"payload")
        restored = SealedBlob.from_bytes(blob.to_bytes())
        assert decrypt(key, restored) == b"payload"

    def test_truncated_blob_rejected(self):
        with pytest.raises(CryptoError, match="short"):
            SealedBlob.from_bytes(b"tiny")

    @given(st.binary(max_size=512))
    def test_roundtrip_property(self, payload):
        key = derive_key(b"k" * 32, b"test")
        assert decrypt(key, encrypt(key, payload)) == payload


class TestKeyDerivation:
    def test_deterministic(self):
        parent = b"p" * 32
        assert derive_key(parent, b"a") == derive_key(parent, b"a")

    def test_context_separates(self):
        parent = b"p" * 32
        assert derive_key(parent, b"a") != derive_key(parent, b"b")

    def test_multi_context_not_concat_ambiguous(self):
        parent = b"p" * 32
        assert derive_key(parent, b"ab", b"c") != derive_key(parent, b"a", b"bc")

    def test_output_is_key_sized(self):
        assert len(derive_key(b"p" * 32, b"x")) == crypto.KEY_BYTES
