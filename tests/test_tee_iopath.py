"""Tests for the trusted I/O path (sealed weight transport)."""

import numpy as np
import pytest

from repro.tee import (
    SecureMemoryPool,
    SecureWorldViolation,
    TrustedIOPath,
    secure_world,
)
from repro.tee.crypto import CryptoError


def weights():
    return [
        {"weight": np.arange(6.0).reshape(2, 3), "bias": np.zeros(2)},
        {},
        {"weight": np.ones((3, 3))},
    ]


class TestTrustedIOPath:
    def test_server_roundtrip(self):
        path = TrustedIOPath()
        restored = path.unseal_remote(path.seal(weights()))
        np.testing.assert_array_equal(restored[0]["weight"], weights()[0]["weight"])
        assert restored[1] == {}

    def test_normal_world_cannot_unseal_to_enclave(self):
        path = TrustedIOPath()
        pool = SecureMemoryPool()
        blob = path.seal(weights())
        with pytest.raises(SecureWorldViolation):
            path.unseal_to_enclave(blob, pool)

    def test_enclave_provisioning_creates_shielded_buffers(self):
        path = TrustedIOPath()
        pool = SecureMemoryPool()
        blob = path.seal(weights())
        with secure_world():
            buffers = path.unseal_to_enclave(blob, pool)
            assert set(buffers) == {(0, "weight"), (0, "bias"), (2, "weight")}
            np.testing.assert_array_equal(
                buffers[(0, "weight")].read(), weights()[0]["weight"]
            )
        # Charged as float32 (4 bytes/element): 6 + 2 + 9 elements.
        assert pool.used_bytes == 4 * (6 + 2 + 9)

    def test_enclave_export_roundtrip(self):
        path = TrustedIOPath()
        pool = SecureMemoryPool()
        blob = path.seal(weights())
        with secure_world():
            buffers = path.unseal_to_enclave(blob, pool)
            out = path.seal_from_enclave(buffers, n_layers=3)
        restored = path.unseal_remote(out)
        np.testing.assert_array_equal(restored[2]["weight"], np.ones((3, 3)))

    def test_wrong_session_key_fails(self):
        a, b = TrustedIOPath(), TrustedIOPath()
        with pytest.raises(CryptoError):
            b.unseal_remote(a.seal(weights()))

    def test_shared_key_interoperates(self):
        key = b"k" * 32
        a, b = TrustedIOPath(key), TrustedIOPath(key)
        restored = b.unseal_remote(a.seal(weights()))
        np.testing.assert_array_equal(restored[0]["bias"], np.zeros(2))

    def test_blob_is_opaque(self):
        """The sealed blob must not contain the raw weight bytes."""
        path = TrustedIOPath()
        w = [{"weight": np.full((4, 4), 7.25)}]
        blob = path.seal(w)
        assert np.full((4, 4), 7.25).tobytes() not in blob
