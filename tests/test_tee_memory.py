"""Tests for the secure memory pool and shielded buffers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tee import (
    SecureMemoryExhausted,
    SecureMemoryPool,
    SecureWorldViolation,
    ShieldedBuffer,
    secure_world,
)

settings.register_profile("ci", max_examples=30, deadline=None)
settings.load_profile("ci")


class TestSecureMemoryPool:
    def test_allocate_and_release(self):
        pool = SecureMemoryPool(1000)
        handle = pool.allocate(400)
        assert pool.used_bytes == 400
        pool.release(handle)
        assert pool.used_bytes == 0

    def test_exhaustion_raises(self):
        pool = SecureMemoryPool(100)
        pool.allocate(80)
        with pytest.raises(SecureMemoryExhausted, match="free"):
            pool.allocate(30)

    def test_peak_watermark(self):
        pool = SecureMemoryPool(1000)
        a = pool.allocate(600)
        pool.release(a)
        pool.allocate(100)
        assert pool.peak_bytes == 600

    def test_reset_peak(self):
        pool = SecureMemoryPool(1000)
        a = pool.allocate(500)
        pool.release(a)
        pool.reset_peak()
        assert pool.peak_bytes == 0

    def test_double_release_raises(self):
        pool = SecureMemoryPool(100)
        h = pool.allocate(10)
        pool.release(h)
        with pytest.raises(KeyError):
            pool.release(h)

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            SecureMemoryPool(100).allocate(-1)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            SecureMemoryPool(0)

    @given(st.lists(st.integers(1, 100), min_size=1, max_size=20))
    def test_accounting_invariant(self, sizes):
        """used == sum(live); peak >= used; free + used == capacity."""
        pool = SecureMemoryPool(10_000)
        handles = []
        for size in sizes:
            handles.append((pool.allocate(size), size))
        live = sum(s for _, s in handles)
        assert pool.used_bytes == live
        assert pool.free_bytes == 10_000 - live
        for h, s in handles[::2]:
            pool.release(h)
            live -= s
        assert pool.used_bytes == live
        assert pool.peak_bytes >= pool.used_bytes


class TestShieldedBuffer:
    def setup_method(self):
        self.pool = SecureMemoryPool(1 << 20)
        self.data = np.arange(6.0).reshape(2, 3)

    def test_normal_world_read_raises(self):
        buf = ShieldedBuffer(self.pool, self.data, label="w")
        with pytest.raises(SecureWorldViolation, match="secure world"):
            buf.read()

    def test_normal_world_array_coercion_raises(self):
        buf = ShieldedBuffer(self.pool, self.data)
        with pytest.raises(SecureWorldViolation):
            np.asarray(buf)

    def test_secure_world_read_returns_copy(self):
        buf = ShieldedBuffer(self.pool, self.data)
        with secure_world():
            out = buf.read()
            out[:] = -1
            np.testing.assert_array_equal(buf.read(), self.data)

    def test_write_requires_secure_world(self):
        buf = ShieldedBuffer(self.pool, self.data)
        with pytest.raises(SecureWorldViolation):
            buf.write(np.zeros((2, 3)))

    def test_write_shape_checked(self):
        buf = ShieldedBuffer(self.pool, self.data)
        with secure_world():
            with pytest.raises(ValueError, match="shape mismatch"):
                buf.write(np.zeros((3, 2)))

    def test_release_frees_pool(self):
        buf = ShieldedBuffer(self.pool, self.data)
        used = self.pool.used_bytes
        buf.release()
        assert self.pool.used_bytes == used - self.data.nbytes

    def test_release_is_idempotent(self):
        buf = ShieldedBuffer(self.pool, self.data)
        buf.release()
        buf.release()  # no error

    def test_read_after_release_raises(self):
        buf = ShieldedBuffer(self.pool, self.data)
        buf.release()
        with secure_world():
            with pytest.raises(SecureWorldViolation, match="released"):
                buf.read()

    def test_nbytes_override_charges_pool(self):
        buf = ShieldedBuffer(self.pool, self.data, nbytes_override=24)
        assert buf.nbytes == 24
        assert self.pool.used_bytes == 24

    def test_repr_does_not_leak_contents(self):
        buf = ShieldedBuffer(self.pool, self.data, label="secret")
        text = repr(buf)
        assert "secret" in text  # the label
        assert "0." not in text  # not the payload

    def test_allocation_respects_capacity(self):
        tiny = SecureMemoryPool(8)
        with pytest.raises(SecureMemoryExhausted):
            ShieldedBuffer(tiny, np.zeros(100))
