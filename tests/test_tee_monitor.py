"""Tests for the secure monitor (SMC dispatch) and trusted applications."""

import pytest

from repro import obs
from repro.fl import ParallelRoundExecutor
from repro.obs import FakeClock
from repro.tee import (
    SecureMonitor,
    SecureWorldViolation,
    TEEError,
    TrustedApplication,
    World,
    current_world,
)


def make_echo_ta(name="echo"):
    ta = TrustedApplication(name)
    ta.register("echo", lambda value: value)
    ta.register("world", lambda: current_world())
    return ta


class TestTrustedApplication:
    def test_uuid_stable_per_name(self):
        assert TrustedApplication("svc").uuid == TrustedApplication("svc").uuid

    def test_invoke_outside_secure_world_raises(self):
        ta = make_echo_ta()
        with pytest.raises(SecureWorldViolation):
            ta.invoke("echo", value=1)

    def test_unknown_command_raises(self):
        monitor = SecureMonitor()
        ta = make_echo_ta()
        monitor.install(ta)
        with pytest.raises(KeyError, match="no command"):
            monitor.smc(ta.uuid, "missing")

    def test_measurement_changes_with_version(self):
        a = TrustedApplication("svc", version="1.0")
        b = TrustedApplication("svc", version="2.0")
        assert a.measurement() != b.measurement()

    def test_measurement_changes_with_commands(self):
        a = make_echo_ta()
        b = TrustedApplication("echo")
        assert a.measurement() != b.measurement()

    def test_measurement_deterministic(self):
        assert make_echo_ta().measurement() == make_echo_ta().measurement()


class TestSecureMonitor:
    def test_smc_runs_in_secure_world(self):
        monitor = SecureMonitor()
        ta = make_echo_ta()
        monitor.install(ta)
        assert monitor.smc(ta.uuid, "world") is World.SECURE
        assert current_world() is World.NORMAL

    def test_smc_passes_params_and_returns(self):
        monitor = SecureMonitor()
        ta = make_echo_ta()
        monitor.install(ta)
        assert monitor.smc(ta.uuid, "echo", value=42) == 42

    def test_stats_count_calls(self):
        monitor = SecureMonitor()
        ta = make_echo_ta()
        monitor.install(ta)
        for _ in range(3):
            monitor.smc(ta.uuid, "echo", value=0)
        assert monitor.stats.calls == 3
        assert monitor.stats.per_ta["echo"] == 3

    def test_duplicate_install_rejected(self):
        monitor = SecureMonitor()
        ta = make_echo_ta()
        monitor.install(ta)
        with pytest.raises(TEEError, match="already installed"):
            monitor.install(make_echo_ta())

    def test_unknown_ta_raises(self):
        with pytest.raises(KeyError, match="no TA"):
            SecureMonitor().smc("missing-uuid", "cmd")

    def test_uninstall(self):
        monitor = SecureMonitor()
        ta = make_echo_ta()
        monitor.install(ta)
        monitor.uninstall(ta.uuid)
        assert monitor.installed() == ()

    def test_world_restored_after_ta_exception(self):
        monitor = SecureMonitor()
        ta = TrustedApplication("bomb")
        ta.register("explode", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        monitor.install(ta)
        with pytest.raises(RuntimeError):
            monitor.smc(ta.uuid, "explode")
        assert current_world() is World.NORMAL


class TestConcurrentStats:
    """Regression: ``SMCStats`` bookkeeping must be exact under contention.

    ``per_ta`` used to be bumped with an unlocked read-modify-write; four
    workers hammering one monitor through the parallel round executor could
    lose increments.  With the stats lock in place the counts are exact.
    """

    def test_parallel_hammering_counts_exactly(self):
        monitor = SecureMonitor()
        ta = make_echo_ta()
        monitor.install(ta)
        calls_per_worker = 250
        workers = 4

        def hammer(worker_id):
            for i in range(calls_per_worker):
                assert monitor.smc(ta.uuid, "echo", value=(worker_id, i)) == (
                    worker_id,
                    i,
                )
            return worker_id

        with obs.fresh(clock=FakeClock()) as ctx:
            with ParallelRoundExecutor(max_workers=workers) as executor:
                assert executor.map(hammer, range(workers)) == list(range(workers))
            expected = workers * calls_per_worker
            assert monitor.stats.calls == expected
            assert monitor.stats.per_ta["echo"] == expected
            # The metrics registry saw the same exact count.
            counter = ctx.registry.counter("tee.smc.calls")
            assert counter.value(ta="echo", command="echo") == expected


class TestSessions:
    """GlobalPlatform-style open/invoke/close protocol."""

    def make(self):
        monitor = SecureMonitor()
        ta = make_echo_ta()
        monitor.install(ta)
        return monitor, ta

    def test_open_invoke_close(self):
        monitor, ta = self.make()
        session = monitor.open_session(ta.uuid)
        assert monitor.invoke(session, "echo", value=7) == 7
        monitor.close_session(session)
        assert monitor.stats.sessions_opened == 1
        assert monitor.stats.sessions_closed == 1

    def test_invoke_after_close_fails(self):
        monitor, ta = self.make()
        session = monitor.open_session(ta.uuid)
        monitor.close_session(session)
        with pytest.raises(TEEError, match="not open"):
            monitor.invoke(session, "echo", value=1)

    def test_invoke_unknown_session_fails(self):
        monitor, _ = self.make()
        with pytest.raises(TEEError, match="not open"):
            monitor.invoke(999, "echo", value=1)

    def test_double_close_fails(self):
        monitor, ta = self.make()
        session = monitor.open_session(ta.uuid)
        monitor.close_session(session)
        with pytest.raises(TEEError):
            monitor.close_session(session)

    def test_open_session_validates_uuid(self):
        monitor, _ = self.make()
        with pytest.raises(KeyError):
            monitor.open_session("ghost")

    def test_sessions_track_invocations(self):
        monitor, ta = self.make()
        session = monitor.open_session(ta.uuid)
        monitor.invoke(session, "echo", value=1)
        monitor.invoke(session, "echo", value=2)
        assert monitor.session(session).invocations == 2

    def test_independent_sessions(self):
        monitor, ta = self.make()
        a = monitor.open_session(ta.uuid)
        b = monitor.open_session(ta.uuid)
        monitor.close_session(a)
        assert monitor.invoke(b, "echo", value=3) == 3
