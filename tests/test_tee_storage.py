"""Tests for OP-TEE-style secure storage (SSK -> TSK -> FEK hierarchy)."""

import os

import pytest

from repro.tee import InMemoryBackend, IntegrityError, ReeFsBackend, SecureStorage


class TestSecureStorage:
    def setup_method(self):
        self.storage = SecureStorage()
        self.ta = "ta-uuid-1234"

    def test_roundtrip(self):
        self.storage.put(self.ta, "model", b"weights-blob")
        assert self.storage.get(self.ta, "model") == b"weights-blob"

    def test_missing_object_raises_keyerror(self):
        with pytest.raises(KeyError, match="no secure object"):
            self.storage.get(self.ta, "nothing")

    def test_overwrite_replaces(self):
        self.storage.put(self.ta, "k", b"v1")
        self.storage.put(self.ta, "k", b"v2")
        assert self.storage.get(self.ta, "k") == b"v2"

    def test_delete(self):
        self.storage.put(self.ta, "k", b"v")
        self.storage.delete(self.ta, "k")
        with pytest.raises(KeyError):
            self.storage.get(self.ta, "k")

    def test_per_ta_isolation(self):
        """A TA cannot read another TA's objects — TSK derives from UUID."""
        self.storage.put("ta-A", "secret", b"A's data")
        # Same object name under a different TA: absent.
        with pytest.raises(KeyError):
            self.storage.get("ta-B", "secret")

    def test_tampered_blob_detected(self):
        self.storage.put(self.ta, "k", b"sensitive")
        key = SecureStorage._key(self.ta, "k")
        blob = bytearray(self.storage.backend.get(key))
        blob[-1] ^= 0xFF
        self.storage.backend.put(key, bytes(blob))
        with pytest.raises(IntegrityError, match="verification"):
            self.storage.get(self.ta, "k")

    def test_cross_device_blobs_unreadable(self):
        """Blobs sealed under one device's SSK fail on another device."""
        other = SecureStorage()
        self.storage.put(self.ta, "k", b"data")
        key = SecureStorage._key(self.ta, "k")
        other.backend.put(key, self.storage.backend.get(key))
        with pytest.raises(IntegrityError):
            other.get(self.ta, "k")

    def test_backend_sees_only_ciphertext(self):
        self.storage.put(self.ta, "k", b"PLAINTEXT-MARKER")
        raw = self.storage.backend.get(SecureStorage._key(self.ta, "k"))
        assert b"PLAINTEXT-MARKER" not in raw

    def test_objects_listing(self):
        self.storage.put(self.ta, "a", b"1")
        self.storage.put(self.ta, "b", b"2")
        assert len(self.storage.objects()) == 2


class TestReeFsBackend:
    def test_roundtrip_via_files(self, tmp_path):
        storage = SecureStorage(backend=ReeFsBackend(str(tmp_path)))
        storage.put("ta", "weights", b"blob" * 100)
        assert storage.get("ta", "weights") == b"blob" * 100
        assert any(name.endswith(".sec") for name in os.listdir(tmp_path))

    def test_atomic_replace_leaves_single_file(self, tmp_path):
        backend = ReeFsBackend(str(tmp_path))
        backend.put("k", b"v1")
        backend.put("k", b"v2")
        files = [n for n in os.listdir(tmp_path) if n.endswith(".sec")]
        assert len(files) == 1
        assert backend.get("k") == b"v2"

    def test_delete_removes_file(self, tmp_path):
        backend = ReeFsBackend(str(tmp_path))
        backend.put("k", b"v")
        backend.delete("k")
        assert backend.get("k") is None

    def test_keys_listing(self, tmp_path):
        backend = ReeFsBackend(str(tmp_path))
        backend.put("alpha", b"1")
        backend.put("beta", b"2")
        assert backend.keys() == ("alpha", "beta")

    def test_path_traversal_neutralised(self, tmp_path):
        backend = ReeFsBackend(str(tmp_path))
        backend.put("../../evil", b"x")
        # Everything stays inside the directory.
        for name in os.listdir(tmp_path):
            assert ".." not in name
            assert "/" not in name


class TestInMemoryBackend:
    def test_missing_returns_none(self):
        assert InMemoryBackend().get("k") is None

    def test_delete_missing_is_noop(self):
        InMemoryBackend().delete("nothing")


class TestRollbackProtection:
    """RPMB-style replay protection: stale-but-genuine blobs are rejected."""

    def test_replayed_old_version_detected(self):
        from repro.tee import RollbackError, SecureStorage

        storage = SecureStorage()
        storage.put("ta", "model", b"v1")
        key = SecureStorage._key("ta", "model")
        old_blob = storage.backend.get(key)
        storage.put("ta", "model", b"v2")
        # Attacker swaps the genuinely-sealed old blob back in.
        storage.backend.put(key, old_blob)
        with pytest.raises(RollbackError, match="replay"):
            storage.get("ta", "model")

    def test_current_version_reads_fine_after_many_writes(self):
        from repro.tee import SecureStorage

        storage = SecureStorage()
        for i in range(5):
            storage.put("ta", "k", f"v{i}".encode())
        assert storage.get("ta", "k") == b"v4"

    def test_counter_resets_after_delete(self):
        from repro.tee import SecureStorage

        storage = SecureStorage()
        storage.put("ta", "k", b"a")
        storage.delete("ta", "k")
        storage.put("ta", "k", b"b")
        assert storage.get("ta", "k") == b"b"
