"""Crash-atomicity of secure storage: a write that dies must not lose data.

The commit point of :meth:`SecureStorage.put` is the backend write; the
monotonic counter increments only afterwards.  These tests kill the backend
mid-``put`` (fault-injected) and pin down the contract: the previous version
stays readable, a torn blob is detected as tampering, and replaying a stale
blob after the crash is still caught by the rollback counter.
"""

from __future__ import annotations

import pytest

from repro.tee.storage import (
    BackendCrash,
    FaultInjectedBackend,
    InMemoryBackend,
    ReeFsBackend,
    RollbackError,
    SecureStorage,
)
from repro.tee.world import IntegrityError

TA = "ta-crash-tests"
SSK = b"\x42" * 32


class TestCrashBeforeWrite:
    def test_previous_version_survives(self):
        backend = FaultInjectedBackend(fail_on_put={1}, mode="before")
        storage = SecureStorage(backend, ssk=SSK)
        storage.put(TA, "obj", b"version-1")
        with pytest.raises(BackendCrash):
            storage.put(TA, "obj", b"version-2")
        assert storage.get(TA, "obj") == b"version-1"

    def test_crash_on_first_write_leaves_nothing(self):
        backend = FaultInjectedBackend(fail_on_put={0}, mode="before")
        storage = SecureStorage(backend, ssk=SSK)
        with pytest.raises(BackendCrash):
            storage.put(TA, "obj", b"never-lands")
        with pytest.raises(KeyError):
            storage.get(TA, "obj")

    def test_storage_usable_after_crash(self):
        backend = FaultInjectedBackend(fail_on_put={1}, mode="before")
        storage = SecureStorage(backend, ssk=SSK)
        storage.put(TA, "obj", b"v1")
        with pytest.raises(BackendCrash):
            storage.put(TA, "obj", b"v2-dies")
        storage.put(TA, "obj", b"v2-retry")
        assert storage.get(TA, "obj") == b"v2-retry"


class TestTornWrite:
    def test_torn_blob_fails_integrity_not_rollback(self):
        backend = FaultInjectedBackend(fail_on_put={1}, mode="torn")
        storage = SecureStorage(backend, ssk=SSK)
        storage.put(TA, "obj", b"version-1" * 50)
        with pytest.raises(BackendCrash):
            storage.put(TA, "obj", b"version-2" * 50)
        # the half-written blob replaced v1 on the medium; the MAC check
        # must reject it loudly rather than return garbage
        with pytest.raises(IntegrityError):
            storage.get(TA, "obj")

    def test_recovery_after_torn_write(self):
        backend = FaultInjectedBackend(fail_on_put={1}, mode="torn")
        storage = SecureStorage(backend, ssk=SSK)
        storage.put(TA, "obj", b"v1")
        with pytest.raises(BackendCrash):
            storage.put(TA, "obj", b"v2-dies")
        storage.put(TA, "obj", b"v2-good")
        assert storage.get(TA, "obj") == b"v2-good"


class TestRollbackAfterCrash:
    def test_replayed_stale_blob_rejected(self):
        """A crash must not open a replay window: after recovery, serving
        the old (genuinely sealed) blob still trips the counter."""
        inner = InMemoryBackend()
        backend = FaultInjectedBackend(inner, fail_on_put={1}, mode="before")
        storage = SecureStorage(backend, ssk=SSK)
        storage.put(TA, "obj", b"version-1")
        key = SecureStorage._key(TA, "obj")
        stale = inner.get(key)
        with pytest.raises(BackendCrash):
            storage.put(TA, "obj", b"version-2")
        storage.put(TA, "obj", b"version-2")  # recovery write (counter -> 2)
        # attacker swaps the current blob for the pre-crash one
        inner.put(key, stale)
        with pytest.raises(RollbackError):
            storage.get(TA, "obj")

    def test_counter_not_advanced_by_failed_put(self):
        backend = FaultInjectedBackend(fail_on_put={1}, mode="before")
        storage = SecureStorage(backend, ssk=SSK)
        storage.put(TA, "obj", b"v1")
        with pytest.raises(BackendCrash):
            storage.put(TA, "obj", b"v2")
        # v1 is still the trusted version — reads keep succeeding, which
        # they could not if the counter had advanced past the stored blob
        assert storage.get(TA, "obj") == b"v1"
        assert storage.get(TA, "obj") == b"v1"


class TestPersistentCounters:
    def test_counters_survive_restart(self, tmp_path):
        counters = str(tmp_path / "counters.json")
        backend = ReeFsBackend(str(tmp_path / "blobs"))
        first = SecureStorage(backend, ssk=SSK, counters_path=counters)
        first.put(TA, "obj", b"v1")
        first.put(TA, "obj", b"v2")
        # a fresh instance (new process) trusts the persisted counter
        second = SecureStorage(backend, ssk=SSK, counters_path=counters)
        assert second.get(TA, "obj") == b"v2"

    def test_replay_rejected_across_restart(self, tmp_path):
        counters = str(tmp_path / "counters.json")
        blob_dir = tmp_path / "blobs"
        backend = ReeFsBackend(str(blob_dir))
        first = SecureStorage(backend, ssk=SSK, counters_path=counters)
        first.put(TA, "obj", b"v1")
        key = SecureStorage._key(TA, "obj")
        stale = backend.get(key)
        first.put(TA, "obj", b"v2")
        backend.put(key, stale)  # attacker rolls the file back
        second = SecureStorage(backend, ssk=SSK, counters_path=counters)
        with pytest.raises(RollbackError):
            second.get(TA, "obj")

    def test_without_counter_file_fresh_instance_trusts_nothing(self, tmp_path):
        backend = ReeFsBackend(str(tmp_path / "blobs"))
        first = SecureStorage(backend, ssk=SSK)
        first.put(TA, "obj", b"v1")
        second = SecureStorage(backend, ssk=SSK)
        with pytest.raises(RollbackError):
            second.get(TA, "obj")


class TestFaultInjectedBackendPlumbing:
    def test_mode_validated(self):
        with pytest.raises(ValueError):
            FaultInjectedBackend(mode="sideways")

    def test_delegates_when_healthy(self):
        inner = InMemoryBackend()
        backend = FaultInjectedBackend(inner)
        backend.put("k", b"blob")
        assert backend.get("k") == b"blob"
        assert backend.keys() == ("k",)
        backend.delete("k")
        assert backend.get("k") is None
        assert backend.puts == 1

    def test_simulator_checkpoint_crash_leaves_resumable_state(self):
        """End-to-end: the simulator's checkpoint write dies, the previous
        checkpoint still resumes the run to the exact reference weights."""
        from repro import obs
        from repro.obs import VirtualClock
        from repro.sim import FLSimulator, SimConfig

        config = SimConfig(num_clients=40, rounds=3, seed=5, cohort=8)
        with obs.fresh(clock=VirtualClock()) as ctx:
            reference = FLSimulator(config, clock=ctx.clock).run()

        # checkpoint writes are puts #0,#1,#2; kill the one after round 2
        backend = FaultInjectedBackend(fail_on_put={1}, mode="before")
        storage = SecureStorage(backend, ssk=SSK)
        with obs.fresh(clock=VirtualClock()) as ctx:
            sim = FLSimulator(config, storage=storage, clock=ctx.clock)
            sim.step_round()
            with pytest.raises(BackendCrash):
                sim.step_round()  # round 1 trains fine, checkpoint dies
        with obs.fresh(clock=VirtualClock()) as ctx:
            resumed = FLSimulator(config, storage=storage, clock=ctx.clock)
            assert resumed.resumed_from == 1  # round 0's checkpoint survived
            report = resumed.run()
        assert report["weights_sha256"] == reference["weights_sha256"]
        assert report["rounds"] == reference["rounds"]
