"""Tests for world switching and the security exception hierarchy."""

import pytest

from repro.tee import (
    SecureWorldViolation,
    TEEError,
    World,
    current_world,
    require_secure_world,
    secure_world,
)


class TestWorlds:
    def test_default_world_is_normal(self):
        assert current_world() is World.NORMAL

    def test_secure_world_context(self):
        with secure_world():
            assert current_world() is World.SECURE
        assert current_world() is World.NORMAL

    def test_nested_contexts_restore(self):
        with secure_world():
            with secure_world():
                assert current_world() is World.SECURE
            assert current_world() is World.SECURE
        assert current_world() is World.NORMAL

    def test_world_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with secure_world():
                raise RuntimeError("boom")
        assert current_world() is World.NORMAL

    def test_require_secure_world_raises_in_normal(self):
        with pytest.raises(SecureWorldViolation, match="only permitted"):
            require_secure_world("test op")

    def test_require_secure_world_passes_in_secure(self):
        with secure_world():
            require_secure_world("test op")  # should not raise

    def test_exception_hierarchy(self):
        assert issubclass(SecureWorldViolation, TEEError)
